//! Tree induction with the paper's modified gini splitting index.
//!
//! Given points with partition labels, [`induce`] builds the decision tree
//! of §4.1.1:
//!
//! * candidate hyperplanes are the positions between successive distinct
//!   coordinates along each dimension (at most `D * |A|` per node);
//! * every candidate is scored with Equation 1,
//!   `sqrt(Σᵢ |A₁,ᵢ|²) + sqrt(Σᵢ |A₂,ᵢ|²)`, evaluated in `O(1)` per
//!   position by maintaining the two sums of squares incrementally as the
//!   sweep moves points from `A₂` to `A₁`;
//! * the points are sorted along each dimension **once** at the root; each
//!   split stably partitions the per-dimension orderings, exactly as the
//!   paper prescribes, so no re-sorting ever happens below the root;
//! * induction of independent subtrees runs in parallel (rayon), mirroring
//!   the ScalParC-style parallel formulation the paper cites.
//!
//! Two stopping rules are provided: [`StopRule::Purity`] builds the
//! contact-search descriptor tree (§4.1), and [`StopRule::MaxPMaxI`]
//! builds the full-vertex tree of the DT-friendly partitioning correction
//! (§4.2) — it keeps splitting *pure* regions larger than `max_p` (median
//! splits along the longest extent) and stops splitting *impure* regions
//! smaller than `max_i`.

use crate::tree::{DecisionTree, DtNode};
use cip_geom::{Aabb, AxisPlane, Point, Side};
use cip_telemetry::Recorder;

/// When to stop splitting a node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StopRule {
    /// Stop at pure nodes — the contact-search descriptor tree of §4.1.
    Purity,
    /// The §4.2 rule for DT-friendly partition correction: keep splitting
    /// pure nodes with more than `max_p` points; stop splitting impure
    /// nodes with fewer than `max_i` points.
    MaxPMaxI {
        /// Pure-node point threshold (`max_p` in the paper).
        max_p: usize,
        /// Impure-node point threshold (`max_i` in the paper).
        max_i: usize,
    },
}

/// The splitting-index used to score candidate hyperplanes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Splitter {
    /// The paper's modified gini index (Equation 1).
    Gini,
    /// §6 extension: add `alpha * gap / extent` to Equation 1, where `gap`
    /// is the empty distance around the candidate hyperplane — among
    /// near-equally pure candidates, prefer planes through sparsely
    /// populated space, which reduces false positives during contact
    /// search. Equation 1 is measured in points, so `alpha < 1` acts as a
    /// pure tie-break that never trades away a full point of purity.
    /// (A multiplicative variant was tried first and *hurt* NRemote by
    /// overriding purity; see EXPERIMENTS.md.)
    MarginAware {
        /// Strength of the margin preference (0 recovers plain gini).
        alpha: f64,
    },
}

/// Induction configuration.
#[derive(Debug, Clone, Copy)]
pub struct DtreeConfig {
    /// Stopping rule.
    pub stop: StopRule,
    /// Hyperplane scoring function.
    pub splitter: Splitter,
    /// Hard depth cap (safety net for adversarial inputs).
    pub max_depth: usize,
    /// Subtrees with at least this many points are induced in parallel.
    pub parallel_threshold: usize,
}

impl Default for DtreeConfig {
    fn default() -> Self {
        Self {
            stop: StopRule::Purity,
            splitter: Splitter::Gini,
            max_depth: 64,
            parallel_threshold: 4096,
        }
    }
}

impl DtreeConfig {
    /// Config for a purity-stopped contact-search tree.
    pub fn search_tree() -> Self {
        Self::default()
    }

    /// Config for the §4.2 DT-friendly correction tree.
    pub fn friendly_tree(max_p: usize, max_i: usize) -> Self {
        Self { stop: StopRule::MaxPMaxI { max_p, max_i }, ..Self::default() }
    }
}

/// Boxed tree used during induction; flattened into the arena afterwards.
enum BNode<const D: usize> {
    Internal { plane: AxisPlane, left: Box<BNode<D>>, right: Box<BNode<D>> },
    Leaf { part: u32, count: u32, pure: bool, others: Vec<u32>, bounds: Aabb<D> },
}

/// Per-node working set: the point indices sorted along each dimension,
/// plus the per-class counts.
struct NodeSet<const D: usize> {
    sorted: Vec<Vec<u32>>, // D arrays, same index set, each sorted by a dim
    counts: Vec<u32>,      // per-class counts (length k)
}

impl<const D: usize> NodeSet<D> {
    fn n(&self) -> usize {
        self.sorted[0].len()
    }

    fn majority(&self) -> u32 {
        self.counts.iter().enumerate().max_by_key(|&(_, c)| *c).map(|(i, _)| i as u32).unwrap_or(0)
    }

    /// Partitions with points in this set, other than the majority.
    fn minority_parts(&self) -> Vec<u32> {
        let maj = self.majority();
        self.counts
            .iter()
            .enumerate()
            .filter(|&(i, &c)| c > 0 && i as u32 != maj)
            .map(|(i, _)| i as u32)
            .collect()
    }

    fn is_pure(&self) -> bool {
        self.counts.iter().filter(|&&c| c > 0).count() <= 1
    }

    /// Tight bounding box of the set, read off the per-dimension
    /// orderings in O(D).
    fn bounds(&self, points: &[Point<D>]) -> Aabb<D> {
        let n = self.n();
        if n == 0 {
            return Aabb::empty();
        }
        let mut min = Point::origin();
        let mut max = Point::origin();
        for d in 0..D {
            min[d] = points[self.sorted[d][0] as usize][d];
            max[d] = points[self.sorted[d][n - 1] as usize][d];
        }
        Aabb::new(min, max)
    }
}

/// Induces a decision tree over `points` with partition `labels` in
/// `0..k`.
///
/// An empty point set yields a single-leaf tree labeled 0.
///
/// ```
/// use cip_dtree::{induce, DtreeConfig};
/// use cip_geom::Point;
///
/// // Two clusters of contact points, one per partition.
/// let points = vec![
///     Point::new([0.0, 0.0]),
///     Point::new([1.0, 0.0]),
///     Point::new([10.0, 0.0]),
///     Point::new([11.0, 0.0]),
/// ];
/// let labels = vec![0, 0, 1, 1];
/// let tree = induce(&points, &labels, 2, &DtreeConfig::search_tree());
///
/// // One decision hyperplane separates them: 3 nodes total.
/// assert_eq!(tree.num_nodes(), 3);
/// assert_eq!(tree.locate(&points[0]), 0);
/// assert_eq!(tree.locate(&points[3]), 1);
/// ```
///
/// # Panics
/// Panics if `labels.len() != points.len()` or any label is `>= k`.
pub fn induce<const D: usize>(
    points: &[Point<D>],
    labels: &[u32],
    k: usize,
    cfg: &DtreeConfig,
) -> DecisionTree<D> {
    induce_recorded(points, labels, k, cfg, &Recorder::disabled())
}

/// [`induce`] with a telemetry sink: emits a `dtree.induce` span and a
/// `dtree.split_evals` counter (one increment per candidate hyperplane
/// scored). [`DtreeConfig`] is `Copy`, so the recorder travels as a
/// separate argument instead of living in the config.
pub fn induce_recorded<const D: usize>(
    points: &[Point<D>],
    labels: &[u32],
    k: usize,
    cfg: &DtreeConfig,
    rec: &Recorder,
) -> DecisionTree<D> {
    assert_eq!(points.len(), labels.len(), "one label per point");
    assert!(labels.iter().all(|&l| (l as usize) < k), "label out of range");
    if points.is_empty() {
        return DecisionTree::from_nodes(vec![DtNode::Leaf {
            part: 0,
            count: 0,
            pure: true,
            others: Vec::new(),
            bounds: Aabb::empty(),
        }]);
    }

    let mut span = rec.span("dtree.induce").attr("n", points.len()).attr("k", k);

    // Root-level sort along each dimension — the only sorting ever done.
    let mut sorted: Vec<Vec<u32>> = Vec::with_capacity(D);
    for d in 0..D {
        let mut idx: Vec<u32> = (0..points.len() as u32).collect();
        idx.sort_unstable_by(|&a, &b| {
            points[a as usize][d]
                .partial_cmp(&points[b as usize][d])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        sorted.push(idx);
    }
    let mut counts = vec![0u32; k];
    for &l in labels {
        counts[l as usize] += 1;
    }

    let root = build(NodeSet::<D> { sorted, counts }, points, labels, k, cfg, 0, rec);

    // Flatten (preorder) into the arena.
    let mut nodes = Vec::new();
    flatten(&root, &mut nodes);
    span.set_attr("nodes", nodes.len());
    DecisionTree::from_nodes(nodes)
}

fn flatten<const D: usize>(b: &BNode<D>, out: &mut Vec<DtNode<D>>) -> u32 {
    let at = out.len() as u32;
    match b {
        BNode::Leaf { part, count, pure, others, bounds } => {
            out.push(DtNode::Leaf {
                part: *part,
                count: *count,
                pure: *pure,
                others: others.clone(),
                bounds: *bounds,
            });
        }
        BNode::Internal { plane, left, right } => {
            out.push(DtNode::Internal { plane: *plane, left: 0, right: 0 });
            let l = flatten(left, out);
            let r = flatten(right, out);
            if let DtNode::Internal { left: lf, right: rf, .. } = &mut out[at as usize] {
                *lf = l;
                *rf = r;
            }
        }
    }
    at
}

#[allow(clippy::too_many_arguments)]
fn build<const D: usize>(
    set: NodeSet<D>,
    points: &[Point<D>],
    labels: &[u32],
    k: usize,
    cfg: &DtreeConfig,
    depth: usize,
    rec: &Recorder,
) -> BNode<D> {
    let n = set.n();
    let pure = set.is_pure();

    let make_leaf = |set: &NodeSet<D>| BNode::Leaf {
        part: set.majority(),
        count: set.n() as u32,
        pure: set.is_pure(),
        others: set.minority_parts(),
        bounds: set.bounds(points),
    };

    if depth >= cfg.max_depth || n <= 1 {
        return make_leaf(&set);
    }
    let want_split = match cfg.stop {
        StopRule::Purity => !pure,
        StopRule::MaxPMaxI { max_p, max_i } => {
            if pure {
                n > max_p
            } else {
                n >= max_i
            }
        }
    };
    if !want_split {
        return make_leaf(&set);
    }

    // Choose the hyperplane: gini sweep for impure nodes, median split
    // (longest extent) for pure-but-too-large nodes.
    let plane = if pure {
        median_split(&set, points)
    } else {
        best_gini_split(&set, points, labels, k, cfg.splitter, rec)
            .or_else(|| median_split(&set, points))
    };
    let Some(plane) = plane else {
        return make_leaf(&set); // fully degenerate coordinates
    };

    let (left_set, right_set) = partition_set(&set, points, labels, k, &plane);
    if left_set.n() == 0 || right_set.n() == 0 {
        return make_leaf(&set); // numerically degenerate plane
    }
    drop(set);

    let (l, r) = if left_set.n() + right_set.n() >= cfg.parallel_threshold {
        rayon::join(
            || build(left_set, points, labels, k, cfg, depth + 1, rec),
            || build(right_set, points, labels, k, cfg, depth + 1, rec),
        )
    } else {
        (
            build(left_set, points, labels, k, cfg, depth + 1, rec),
            build(right_set, points, labels, k, cfg, depth + 1, rec),
        )
    };
    BNode::Internal { plane, left: Box::new(l), right: Box::new(r) }
}

/// Sweeps every dimension, scoring candidate planes with Equation 1 (plus
/// the optional margin factor) in O(1) per position.
fn best_gini_split<const D: usize>(
    set: &NodeSet<D>,
    points: &[Point<D>],
    labels: &[u32],
    k: usize,
    splitter: Splitter,
    rec: &Recorder,
) -> Option<AxisPlane> {
    let n = set.n();
    let mut best: Option<(f64, AxisPlane)> = None;
    let mut lcnt = vec![0i64; k];
    let mut evals = 0u64;

    #[allow(clippy::needless_range_loop)] // d indexes sorted AND point coords
    for d in 0..D {
        let order = &set.sorted[d];
        let lo = points[order[0] as usize][d];
        let hi = points[order[n - 1] as usize][d];
        if lo == hi {
            continue; // constant dimension
        }
        let extent = hi - lo;

        lcnt.iter_mut().for_each(|c| *c = 0);
        // Sums of squared class counts on each side.
        let mut suml2 = 0i64;
        let mut sumr2: i64 = set.counts.iter().map(|&c| (c as i64) * (c as i64)).sum();

        for i in 0..n - 1 {
            let idx = order[i] as usize;
            let c = labels[idx] as usize;
            // Move one point of class c from right to left:
            // l_c² grows by 2 l_c + 1, r_c² shrinks by 2 r_c - 1.
            let l = lcnt[c];
            let r = set.counts[c] as i64 - l;
            suml2 += 2 * l + 1;
            sumr2 -= 2 * r - 1;
            lcnt[c] = l + 1;

            let here = points[idx][d];
            let next = points[order[i + 1] as usize][d];
            if here == next {
                continue; // no plane can separate equal coordinates
            }
            let mut score = (suml2 as f64).sqrt() + (sumr2 as f64).sqrt();
            if let Splitter::MarginAware { alpha } = splitter {
                score += alpha * (next - here) / extent;
            }
            evals += 1;
            if best.as_ref().is_none_or(|(bs, _)| score > *bs) {
                best = Some((score, AxisPlane::new(d, here)));
            }
        }
    }
    // One counter update per node, not per candidate: keeps the disabled
    // path at a single branch per *call* rather than per position.
    rec.add("dtree.split_evals", evals);
    best.map(|(_, p)| p)
}

/// Median split along the longest extent with a valid separating position —
/// used for pure nodes that exceed `max_p` (where Equation 1 is constant).
fn median_split<const D: usize>(set: &NodeSet<D>, points: &[Point<D>]) -> Option<AxisPlane> {
    let n = set.n();
    // Dims ordered by extent, descending.
    let mut dims: Vec<(f64, usize)> = (0..D)
        .map(|d| {
            let order = &set.sorted[d];
            let lo = points[order[0] as usize][d];
            let hi = points[order[n - 1] as usize][d];
            (hi - lo, d)
        })
        .collect();
    dims.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));

    for &(extent, d) in &dims {
        if extent <= 0.0 {
            continue;
        }
        let order = &set.sorted[d];
        let mid = n / 2;
        // Nearest valid separating position to the median.
        let mut candidate: Option<usize> = None;
        for off in 0..n {
            let fwd = mid + off;
            if fwd + 1 < n && points[order[fwd] as usize][d] < points[order[fwd + 1] as usize][d] {
                candidate = Some(fwd);
                break;
            }
            if off > 0 && off <= mid {
                let back = mid - off;
                if points[order[back] as usize][d] < points[order[back + 1] as usize][d] {
                    candidate = Some(back);
                    break;
                }
            }
        }
        if let Some(i) = candidate {
            return Some(AxisPlane::new(d, points[order[i] as usize][d]));
        }
    }
    None
}

/// Stably partitions every per-dimension ordering by the plane, preserving
/// sortedness on both sides, and recomputes the class counts.
fn partition_set<const D: usize>(
    set: &NodeSet<D>,
    points: &[Point<D>],
    labels: &[u32],
    k: usize,
    plane: &AxisPlane,
) -> (NodeSet<D>, NodeSet<D>) {
    let mut lsorted = Vec::with_capacity(D);
    let mut rsorted = Vec::with_capacity(D);
    for d in 0..D {
        let mut l = Vec::new();
        let mut r = Vec::new();
        for &i in &set.sorted[d] {
            match plane.point_side(&points[i as usize]) {
                Side::Left => l.push(i),
                _ => r.push(i),
            }
        }
        lsorted.push(l);
        rsorted.push(r);
    }
    let mut lcounts = vec![0u32; k];
    for &i in &lsorted[0] {
        lcounts[labels[i as usize] as usize] += 1;
    }
    let rcounts: Vec<u32> = set.counts.iter().zip(lcounts.iter()).map(|(&t, &l)| t - l).collect();
    (NodeSet { sorted: lsorted, counts: lcounts }, NodeSet { sorted: rsorted, counts: rcounts })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cip_geom::Aabb;

    /// Three horizontal bands of points labeled 0, 1, 2.
    fn banded_points() -> (Vec<Point<2>>, Vec<u32>) {
        let mut pts = Vec::new();
        let mut labels = Vec::new();
        for band in 0..3u32 {
            for i in 0..10 {
                pts.push(Point::new([i as f64, band as f64 * 10.0 + (i % 3) as f64]));
                labels.push(band);
            }
        }
        (pts, labels)
    }

    #[test]
    fn pure_tree_on_banded_data_is_tiny() {
        let (pts, labels) = banded_points();
        let t = induce(&pts, &labels, 3, &DtreeConfig::search_tree());
        // Two horizontal cuts suffice: 5 nodes.
        assert_eq!(t.num_leaves(), 3, "tree has {} nodes", t.num_nodes());
        assert_eq!(t.num_nodes(), 5);
        // Every point lands in a leaf of its own label.
        for (p, &l) in pts.iter().zip(labels.iter()) {
            assert_eq!(t.locate(p), l);
        }
    }

    #[test]
    fn all_leaves_pure_under_purity_rule() {
        // Checkerboard-ish labels: tree must still reach purity.
        let mut pts = Vec::new();
        let mut labels = Vec::new();
        for i in 0..8 {
            for j in 0..8 {
                pts.push(Point::new([i as f64, j as f64]));
                labels.push(((i / 2 + j / 2) % 2) as u32);
            }
        }
        let t = induce(&pts, &labels, 2, &DtreeConfig::search_tree());
        for (p, &l) in pts.iter().zip(labels.iter()) {
            assert_eq!(t.locate(p), l, "point {p:?}");
        }
        let regions = t.leaf_regions(&Aabb::from_points(&pts));
        assert!(regions.iter().all(|r| r.pure));
    }

    #[test]
    fn query_box_returns_superset_of_contained_labels() {
        let (pts, labels) = banded_points();
        let t = induce(&pts, &labels, 3, &DtreeConfig::search_tree());
        let q = Aabb::new(Point::new([2.0, 0.0]), Point::new([5.0, 12.0]));
        let mut hits = Vec::new();
        t.query_box(&q, &mut hits);
        for (p, &l) in pts.iter().zip(labels.iter()) {
            if q.contains_point(p) {
                assert!(hits.contains(&l), "label {l} owns an in-box point");
            }
        }
    }

    #[test]
    fn diagonal_boundary_blows_up_then_max_rules_shrink() {
        // Figure 2 scenario: diagonal 2-way split of a grid.
        let mut pts = Vec::new();
        let mut labels = Vec::new();
        let n = 16;
        for i in 0..n {
            for j in 0..n {
                pts.push(Point::new([i as f64, j as f64]));
                labels.push(u32::from(i + j >= n));
            }
        }
        let pure = induce(&pts, &labels, 2, &DtreeConfig::search_tree());
        // The diagonal forces many fine cells: strictly more leaves than a
        // straight boundary would need.
        assert!(pure.num_leaves() > 8, "diagonal should need many leaves");
        // The friendly rule with max_i collapses small impure cells.
        let friendly = induce(&pts, &labels, 2, &DtreeConfig::friendly_tree(256, 32));
        assert!(
            friendly.num_nodes() < pure.num_nodes(),
            "friendly {} vs pure {}",
            friendly.num_nodes(),
            pure.num_nodes()
        );
    }

    #[test]
    fn max_p_forces_splitting_of_large_pure_regions() {
        // One label everywhere: purity rule -> single leaf; max_p = 16
        // forces median splits into <= 16-point boxes.
        let mut pts = Vec::new();
        for i in 0..8 {
            for j in 0..8 {
                pts.push(Point::new([i as f64, j as f64]));
            }
        }
        let labels = vec![0u32; 64];
        let pure = induce(&pts, &labels, 1, &DtreeConfig::search_tree());
        assert_eq!(pure.num_nodes(), 1);
        let forced = induce(&pts, &labels, 1, &DtreeConfig::friendly_tree(16, 4));
        assert!(forced.num_leaves() >= 4);
        let regions = forced.leaf_regions(&Aabb::from_points(&pts));
        assert!(regions.iter().all(|r| r.count <= 16), "{regions:?}");
    }

    #[test]
    fn duplicate_coordinates_handled() {
        // Many points stacked on two x positions.
        let pts = vec![
            Point::new([0.0, 0.0]),
            Point::new([0.0, 0.0]),
            Point::new([1.0, 0.0]),
            Point::new([1.0, 0.0]),
        ];
        let labels = vec![0, 0, 1, 1];
        let t = induce(&pts, &labels, 2, &DtreeConfig::search_tree());
        assert_eq!(t.num_nodes(), 3);
        assert_eq!(t.locate(&pts[0]), 0);
        assert_eq!(t.locate(&pts[2]), 1);
    }

    #[test]
    fn identical_points_with_mixed_labels_become_majority_leaf() {
        let pts = vec![Point::new([1.0, 1.0]); 5];
        let labels = vec![0, 1, 1, 1, 0];
        let t = induce(&pts, &labels, 2, &DtreeConfig::search_tree());
        assert_eq!(t.num_nodes(), 1);
        assert_eq!(t.locate(&pts[0]), 1, "majority label wins");
    }

    #[test]
    fn empty_input_yields_single_leaf() {
        let t = induce::<2>(&[], &[], 4, &DtreeConfig::search_tree());
        assert_eq!(t.num_nodes(), 1);
    }

    #[test]
    fn margin_aware_prefers_wide_gaps() {
        // Two clusters, classes separable at x=4.5 (gap 9) or x=0.5/8.5
        // (gap 1): both gini-optimal boundaries exist between classes, but
        // margin-aware must pick the wide gap.
        let pts = vec![
            Point::new([0.0, 0.0]),
            Point::new([1.0, 0.0]),
            Point::new([9.0, 0.0]),
            Point::new([10.0, 0.0]),
        ];
        let labels = vec![0, 0, 1, 1];
        let t = induce(
            &pts,
            &labels,
            2,
            &DtreeConfig { splitter: Splitter::MarginAware { alpha: 1.0 }, ..Default::default() },
        );
        // Root plane must be at x = 1 (the last left coordinate before the
        // wide gap).
        match &t.nodes()[0] {
            DtNode::Internal { plane, .. } => {
                assert_eq!(plane.dim, 0);
                assert_eq!(plane.coord, 1.0);
            }
            _ => panic!("expected internal root"),
        }
    }

    #[test]
    fn three_dimensional_induction() {
        let mut pts = Vec::new();
        let mut labels = Vec::new();
        for i in 0..4 {
            for j in 0..4 {
                for l in 0..4 {
                    pts.push(Point::new([i as f64, j as f64, l as f64]));
                    labels.push(u32::from(l >= 2));
                }
            }
        }
        let t = induce(&pts, &labels, 2, &DtreeConfig::search_tree());
        assert_eq!(t.num_nodes(), 3, "single z-cut suffices");
        for (p, &l) in pts.iter().zip(labels.iter()) {
            assert_eq!(t.locate(p), l);
        }
    }

    #[test]
    fn parallel_and_serial_agree() {
        let (pts, labels) = banded_points();
        let serial = induce(
            &pts,
            &labels,
            3,
            &DtreeConfig { parallel_threshold: usize::MAX, ..Default::default() },
        );
        let parallel =
            induce(&pts, &labels, 3, &DtreeConfig { parallel_threshold: 2, ..Default::default() });
        assert_eq!(serial.num_nodes(), parallel.num_nodes());
        for p in &pts {
            assert_eq!(serial.locate(p), parallel.locate(p));
        }
    }
}
