//! Property-based tests for tree induction (compiled only with
//! `cfg(test)`).

#![cfg(test)]

use crate::{induce, DtreeConfig, Splitter, StopRule};
use cip_geom::{Aabb, Point};
use proptest::prelude::*;

fn points_labels_3d(max_pts: usize, k: usize) -> impl Strategy<Value = (Vec<Point<3>>, Vec<u32>)> {
    proptest::collection::vec(
        ((-50i32..50), (-50i32..50), (-50i32..50), 0u32..k as u32),
        1..max_pts,
    )
    .prop_map(|v| {
        let pts =
            v.iter().map(|&(x, y, z, _)| Point::new([x as f64, y as f64, z as f64])).collect();
        let labels = v.iter().map(|&(_, _, _, l)| l).collect();
        (pts, labels)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Structural identity: a binary tree has `2 * leaves - 1` nodes, and
    /// the stats agree with the direct counters.
    #[test]
    fn stats_are_structurally_consistent((pts, labels) in points_labels_3d(60, 3)) {
        let t = induce(&pts, &labels, 3, &DtreeConfig::search_tree());
        let s = t.stats(3);
        prop_assert_eq!(s.nodes, 2 * s.leaves - 1);
        prop_assert_eq!(s.nodes, t.num_nodes());
        prop_assert_eq!(s.leaves, t.num_leaves());
        prop_assert_eq!(s.depth, t.depth());
        prop_assert_eq!(s.leaves_per_part.iter().sum::<usize>(), s.leaves);
    }

    /// The tight query is a subset of the region query, and both contain
    /// every label owning a point in the query box.
    #[test]
    fn tight_query_is_sound_and_tighter(
        (pts, labels) in points_labels_3d(60, 4),
        qx in -50i32..50, qy in -50i32..50, qz in -50i32..50, w in 1i32..40
    ) {
        let t = induce(&pts, &labels, 4, &DtreeConfig::search_tree());
        let q = Aabb::new(
            Point::new([qx as f64, qy as f64, qz as f64]),
            Point::new([(qx + w) as f64, (qy + w) as f64, (qz + w) as f64]),
        );
        let mut region = Vec::new();
        let mut tight = Vec::new();
        t.query_box(&q, &mut region);
        t.query_box_tight(&q, &mut tight);
        // Tight ⊆ region.
        for p in &tight {
            prop_assert!(region.contains(p));
        }
        // Both contain every true owner.
        for (p, &l) in pts.iter().zip(labels.iter()) {
            if q.contains_point(p) {
                prop_assert!(tight.contains(&l), "tight query missed owner {l}");
                prop_assert!(region.contains(&l));
            }
        }
    }

    /// The margin-aware tie-break never breaks correctness: every point
    /// still locates to its own label when uniquely positioned.
    #[test]
    fn margin_tiebreak_preserves_purity((pts, labels) in points_labels_3d(50, 3)) {
        let cfg = DtreeConfig {
            splitter: Splitter::MarginAware { alpha: 0.5 },
            ..DtreeConfig::search_tree()
        };
        let t = induce(&pts, &labels, 3, &cfg);
        for (i, p) in pts.iter().enumerate() {
            let clash = pts
                .iter()
                .zip(labels.iter())
                .any(|(q, &l)| q == p && l != labels[i]);
            if !clash {
                prop_assert_eq!(t.locate(p), labels[i]);
            }
        }
    }

    /// The max_i rule never produces an impure leaf at or above max_i
    /// points unless the points are geometrically inseparable.
    #[test]
    fn max_i_bounds_impure_leaf_sizes(
        (pts, labels) in points_labels_3d(80, 3),
        max_i in 2usize..12
    ) {
        let cfg = DtreeConfig {
            stop: StopRule::MaxPMaxI { max_p: usize::MAX, max_i },
            ..DtreeConfig::default()
        };
        let t = induce(&pts, &labels, 3, &cfg);
        let bounds = Aabb::from_points(&pts);
        for leaf in t.leaf_regions(&bounds) {
            if !leaf.pure && leaf.count as usize >= max_i {
                // Only allowed when every point in the leaf shares one
                // position (nothing separates them).
                let inside: Vec<&Point<3>> =
                    pts.iter().filter(|p| leaf.region.contains_point(p)).collect();
                let first = inside[0];
                prop_assert!(
                    inside.iter().all(|p| *p == first),
                    "oversized impure leaf with separable points"
                );
            }
        }
    }
}
