//! Tree inspection: statistics and Graphviz export.
//!
//! The paper discusses the search complexity in terms of tree height and
//! the number of leaves describing each subdomain ("each subdomain will in
//! general be described by more than one leaf node"); [`TreeStats`]
//! quantifies exactly that, and [`DecisionTree::to_dot`] renders the tree for
//! inspection, mirroring Figures 1(c) and 2(b).

use crate::tree::{DecisionTree, DtNode};
use std::fmt::Write as _;

/// Structural statistics of a decision tree.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeStats {
    /// Total nodes (the NTNodes metric).
    pub nodes: usize,
    /// Leaf count.
    pub leaves: usize,
    /// Impure leaves (only non-zero for `max_i`-stopped trees or
    /// coincident points).
    pub impure_leaves: usize,
    /// Maximum root-to-leaf depth.
    pub depth: usize,
    /// Point-weighted average leaf depth — the expected cost of locating
    /// one contact point.
    pub mean_point_depth: f64,
    /// Number of leaves describing each partition (indexed by part id) —
    /// the paper's "subdomains consist of several rectangles" measure.
    pub leaves_per_part: Vec<usize>,
}

impl<const D: usize> DecisionTree<D> {
    /// Computes the structural statistics of this tree for `k` parts.
    pub fn stats(&self, k: usize) -> TreeStats {
        let mut stats = TreeStats {
            nodes: self.num_nodes(),
            leaves: 0,
            impure_leaves: 0,
            depth: 0,
            mean_point_depth: 0.0,
            leaves_per_part: vec![0; k],
        };
        let mut total_points = 0u64;
        let mut weighted_depth = 0u64;
        // Iterative DFS carrying depths.
        let mut stack: Vec<(u32, usize)> = vec![(0, 0)];
        while let Some((at, depth)) = stack.pop() {
            match &self.nodes()[at as usize] {
                DtNode::Leaf { part, count, pure, .. } => {
                    stats.leaves += 1;
                    if !pure {
                        stats.impure_leaves += 1;
                    }
                    stats.depth = stats.depth.max(depth);
                    if (*part as usize) < k {
                        stats.leaves_per_part[*part as usize] += 1;
                    }
                    total_points += u64::from(*count);
                    weighted_depth += u64::from(*count) * depth as u64;
                }
                DtNode::Internal { left, right, .. } => {
                    stack.push((*left, depth + 1));
                    stack.push((*right, depth + 1));
                }
            }
        }
        if total_points > 0 {
            stats.mean_point_depth = weighted_depth as f64 / total_points as f64;
        }
        stats
    }

    /// Renders the tree in Graphviz DOT format. Internal nodes show their
    /// decision hyperplane (`x <= 4.75?` with yes/no edge labels, as in
    /// the paper's Figure 1(c)); leaves show their partition and point
    /// count.
    pub fn to_dot(&self) -> String {
        let mut s = String::from("digraph dtree {\n  node [fontname=\"monospace\"];\n");
        for (i, node) in self.nodes().iter().enumerate() {
            match node {
                DtNode::Internal { plane, left, right } => {
                    let axis = ["x", "y", "z", "w"][plane.dim.min(3)];
                    let _ =
                        writeln!(s, "  n{i} [shape=box, label=\"{axis} <= {:.4}?\"];", plane.coord);
                    let _ = writeln!(s, "  n{i} -> n{left} [label=\"yes\"];");
                    let _ = writeln!(s, "  n{i} -> n{right} [label=\"no\"];");
                }
                DtNode::Leaf { part, count, pure, .. } => {
                    let style = if *pure { "solid" } else { "dashed" };
                    let _ = writeln!(
                        s,
                        "  n{i} [shape=ellipse, style={style}, label=\"P{part} ({count})\"];"
                    );
                }
            }
        }
        s.push_str("}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::induce::{induce, DtreeConfig};
    use cip_geom::Point;

    fn banded() -> DecisionTree<2> {
        let mut pts = Vec::new();
        let mut labels = Vec::new();
        for band in 0..3u32 {
            for i in 0..8 {
                pts.push(Point::new([i as f64, band as f64 * 10.0]));
                labels.push(band);
            }
        }
        induce(&pts, &labels, 3, &DtreeConfig::search_tree())
    }

    #[test]
    fn stats_of_banded_tree() {
        let t = banded();
        let s = t.stats(3);
        assert_eq!(s.nodes, 5);
        assert_eq!(s.leaves, 3);
        assert_eq!(s.impure_leaves, 0);
        assert_eq!(s.depth, 2);
        assert_eq!(s.leaves_per_part, vec![1, 1, 1]);
        assert!(s.mean_point_depth >= 1.0 && s.mean_point_depth <= 2.0);
    }

    #[test]
    fn stats_count_fragmented_parts() {
        // Part 0 split into two spatial fragments -> two leaves.
        let pts = vec![Point::new([0.0, 0.0]), Point::new([10.0, 0.0]), Point::new([20.0, 0.0])];
        let labels = vec![0, 1, 0];
        let t = induce(&pts, &labels, 2, &DtreeConfig::search_tree());
        let s = t.stats(2);
        assert_eq!(s.leaves_per_part[0], 2);
        assert_eq!(s.leaves_per_part[1], 1);
    }

    #[test]
    fn dot_output_is_well_formed() {
        let t = banded();
        let dot = t.to_dot();
        assert!(dot.starts_with("digraph dtree {"));
        assert!(dot.ends_with("}\n"));
        assert_eq!(dot.matches("shape=box").count(), 2, "two internal nodes");
        assert_eq!(dot.matches("shape=ellipse").count(), 3, "three leaves");
        assert_eq!(dot.matches("label=\"yes\"").count(), 2);
    }
}
