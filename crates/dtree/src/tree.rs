//! Decision-tree structure and queries.

use cip_geom::{Aabb, AxisPlane, Point, Side};
use serde::{Deserialize, Serialize};

/// A node of the decision tree (flattened arena representation).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum DtNode<const D: usize> {
    /// An internal decision: points with `coord <= plane.coord` take the
    /// *yes* (left) branch.
    Internal {
        /// The decision hyperplane.
        plane: AxisPlane,
        /// Index of the yes-branch child.
        left: u32,
        /// Index of the no-branch child.
        right: u32,
    },
    /// A leaf region.
    Leaf {
        /// The partition whose points this leaf contains (majority label
        /// for impure leaves).
        part: u32,
        /// Number of points that fell into this leaf during induction.
        count: u32,
        /// Whether every point in the leaf belongs to `part`.
        pure: bool,
        /// The non-majority partitions that also have points in this leaf
        /// (empty for pure leaves). Impure leaves arise when points of
        /// different partitions share identical coordinates — e.g. two
        /// bodies in exact touching contact — or under the `max_i`
        /// stopping rule; reporting every resident partition keeps the
        /// global-search filter free of false negatives.
        others: Vec<u32>,
        /// Tight bounding box of the points that fell into this leaf
        /// (empty box for an empty leaf). The leaf's *region* — the box
        /// carved out by the ancestor hyperplanes — generally extends into
        /// empty space beyond this; [`DecisionTree::query_box_tight`]
        /// intersects queries against this box instead of the region,
        /// eliminating the empty-space false positives (§6 of the paper
        /// suggests exactly this kind of sharpening).
        bounds: Aabb<D>,
    },
}

/// Summary of one leaf, as returned by [`DecisionTree::leaf_regions`].
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LeafInfo<const D: usize> {
    /// Majority partition of the leaf.
    pub part: u32,
    /// Point count at induction time.
    pub count: u32,
    /// Whether the leaf was pure.
    pub pure: bool,
    /// The axis-parallel region the leaf covers (clipped to the query
    /// bounds).
    pub region: Aabb<D>,
}

/// A binary space-partitioning decision tree over `D`-dimensional points.
///
/// Built by [`crate::induce()`]; nodes are stored in an arena with the root
/// at index 0.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DecisionTree<const D: usize> {
    nodes: Vec<DtNode<D>>,
}

impl<const D: usize> DecisionTree<D> {
    /// Assembles a tree from an arena whose root is node 0.
    pub(crate) fn from_nodes(nodes: Vec<DtNode<D>>) -> Self {
        debug_assert!(!nodes.is_empty());
        Self { nodes }
    }

    /// Total number of nodes (internal + leaf) — the paper's **NTNodes**
    /// metric, the cost of broadcasting the search structure.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of leaves.
    pub fn num_leaves(&self) -> usize {
        self.nodes.iter().filter(|n| matches!(n, DtNode::Leaf { .. })).count()
    }

    /// Maximum root-to-leaf depth (a single-leaf tree has depth 0).
    pub fn depth(&self) -> usize {
        fn rec<const D: usize>(nodes: &[DtNode<D>], at: u32) -> usize {
            match &nodes[at as usize] {
                DtNode::Leaf { .. } => 0,
                DtNode::Internal { left, right, .. } => {
                    1 + rec(nodes, *left).max(rec(nodes, *right))
                }
            }
        }
        rec(&self.nodes, 0)
    }

    /// Raw node arena (read-only).
    pub fn nodes(&self) -> &[DtNode<D>] {
        &self.nodes
    }

    /// Locates the leaf containing `p` and returns its partition label.
    pub fn locate(&self, p: &Point<D>) -> u32 {
        let mut at = 0u32;
        loop {
            match &self.nodes[at as usize] {
                DtNode::Leaf { part, .. } => return *part,
                DtNode::Internal { plane, left, right } => {
                    at = match plane.point_side(p) {
                        Side::Left => *left,
                        _ => *right,
                    };
                }
            }
        }
    }

    /// Collects into `out` the (sorted, deduplicated) partition labels of
    /// every leaf whose region intersects the box `b`.
    ///
    /// This is the paper's global-search filter: a surface element
    /// (approximated by its bounding box) must be shipped to exactly these
    /// subdomains. Traversal visits both children when the box straddles
    /// the decision hyperplane.
    pub fn query_box(&self, b: &Aabb<D>, out: &mut Vec<u32>) {
        out.clear();
        self.query_rec(0, b, false, out);
        out.sort_unstable();
        out.dedup();
    }

    /// Like [`DecisionTree::query_box`], but a leaf only answers when the
    /// query intersects the **tight bounding box of its points**, not its
    /// whole region. Strictly fewer false positives, still zero false
    /// negatives (every point of a leaf lies inside its tight box).
    pub fn query_box_tight(&self, b: &Aabb<D>, out: &mut Vec<u32>) {
        out.clear();
        self.query_rec(0, b, true, out);
        out.sort_unstable();
        out.dedup();
    }

    fn query_rec(&self, at: u32, b: &Aabb<D>, tight: bool, out: &mut Vec<u32>) {
        match &self.nodes[at as usize] {
            DtNode::Leaf { part, others, count, bounds, .. } => {
                if *count == 0 || (tight && !bounds.intersects(b)) {
                    return;
                }
                out.push(*part);
                out.extend_from_slice(others);
            }
            DtNode::Internal { plane, left, right } => match plane.box_side(b) {
                Side::Left => self.query_rec(*left, b, tight, out),
                Side::Right => self.query_rec(*right, b, tight, out),
                Side::Both => {
                    self.query_rec(*left, b, tight, out);
                    self.query_rec(*right, b, tight, out);
                }
            },
        }
    }

    /// Enumerates every leaf's region, clipped to `bounds` (the mesh
    /// bounding box). The regions tile `bounds` exactly.
    pub fn leaf_regions(&self, bounds: &Aabb<D>) -> Vec<LeafInfo<D>> {
        let mut out = Vec::with_capacity(self.num_leaves());
        self.regions_rec(0, *bounds, &mut out);
        out
    }

    fn regions_rec(&self, at: u32, region: Aabb<D>, out: &mut Vec<LeafInfo<D>>) {
        match &self.nodes[at as usize] {
            DtNode::Leaf { part, count, pure, .. } => {
                out.push(LeafInfo { part: *part, count: *count, pure: *pure, region })
            }
            DtNode::Internal { plane, left, right } => {
                let (l, r) = plane.split_box(&region);
                self.regions_rec(*left, l, out);
                self.regions_rec(*right, r, out);
            }
        }
    }

    /// Assigns every point its leaf's partition label (the majority-relabel
    /// step of the paper's DT-friendly correction, §4.2).
    pub fn relabel_points(&self, points: &[Point<D>]) -> Vec<u32> {
        points.iter().map(|p| self.locate(p)).collect()
    }

    /// Assigns every point its *leaf index* (used to contract graph
    /// vertices into the region graph `G'`).
    pub fn leaf_index_of_points(&self, points: &[Point<D>]) -> (Vec<u32>, usize) {
        // Map arena leaf ids to dense 0..num_leaves ids.
        let mut dense = vec![u32::MAX; self.nodes.len()];
        let mut next = 0u32;
        for (i, n) in self.nodes.iter().enumerate() {
            if matches!(n, DtNode::Leaf { .. }) {
                dense[i] = next;
                next += 1;
            }
        }
        let ids = points
            .iter()
            .map(|p| {
                let mut at = 0u32;
                loop {
                    match &self.nodes[at as usize] {
                        DtNode::Leaf { .. } => return dense[at as usize],
                        DtNode::Internal { plane, left, right } => {
                            at = match plane.point_side(p) {
                                Side::Left => *left,
                                _ => *right,
                            };
                        }
                    }
                }
            })
            .collect();
        (ids, next as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A leaf box covering everything the tests probe.
    const BIG: Aabb<2> =
        Aabb { min: Point { coords: [-100.0, -100.0] }, max: Point { coords: [100.0, 100.0] } };

    /// Hand-built tree: x <= 1 -> part 0; else (y <= 1 -> part 1, else 2).
    fn small_tree() -> DecisionTree<2> {
        DecisionTree::from_nodes(vec![
            DtNode::Internal { plane: AxisPlane::new(0, 1.0), left: 1, right: 2 },
            DtNode::Leaf { part: 0, count: 3, pure: true, others: vec![], bounds: BIG },
            DtNode::Internal { plane: AxisPlane::new(1, 1.0), left: 3, right: 4 },
            DtNode::Leaf { part: 1, count: 2, pure: true, others: vec![], bounds: BIG },
            DtNode::Leaf { part: 2, count: 4, pure: false, others: vec![], bounds: BIG },
        ])
    }

    #[test]
    fn counting_queries() {
        let t = small_tree();
        assert_eq!(t.num_nodes(), 5);
        assert_eq!(t.num_leaves(), 3);
        assert_eq!(t.depth(), 2);
    }

    #[test]
    fn locate_follows_planes() {
        let t = small_tree();
        assert_eq!(t.locate(&Point::new([0.5, 5.0])), 0);
        assert_eq!(t.locate(&Point::new([1.0, 5.0])), 0, "closed-left convention");
        assert_eq!(t.locate(&Point::new([2.0, 0.5])), 1);
        assert_eq!(t.locate(&Point::new([2.0, 3.0])), 2);
    }

    #[test]
    fn query_box_straddling_planes() {
        let t = small_tree();
        let mut out = Vec::new();
        // Box spanning all three regions.
        t.query_box(&Aabb::new(Point::new([0.0, 0.0]), Point::new([3.0, 3.0])), &mut out);
        assert_eq!(out, vec![0, 1, 2]);
        // Box strictly right of x=1 and below y=1.
        t.query_box(&Aabb::new(Point::new([1.5, 0.0]), Point::new([2.0, 0.5])), &mut out);
        assert_eq!(out, vec![1]);
        // Box exactly touching x=1 from the left.
        t.query_box(&Aabb::new(Point::new([0.0, 0.0]), Point::new([1.0, 0.5])), &mut out);
        assert_eq!(out, vec![0]);
    }

    #[test]
    fn leaf_regions_tile_bounds() {
        let t = small_tree();
        let bounds = Aabb::new(Point::new([0.0, 0.0]), Point::new([4.0, 4.0]));
        let regions = t.leaf_regions(&bounds);
        assert_eq!(regions.len(), 3);
        let vol: f64 = regions.iter().map(|l| l.region.volume()).sum();
        assert!((vol - bounds.volume()).abs() < 1e-12);
    }

    #[test]
    fn leaf_index_is_dense() {
        let t = small_tree();
        let pts = vec![
            Point::new([0.5, 0.5]), // leaf 0 (arena 1)
            Point::new([2.0, 0.5]), // leaf 1 (arena 3)
            Point::new([2.0, 2.0]), // leaf 2 (arena 4)
        ];
        let (ids, n) = t.leaf_index_of_points(&pts);
        assert_eq!(n, 3);
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn impure_leaf_reports_all_resident_parts() {
        // Same shape as small_tree but the impure leaf also hosts part 3.
        let t = DecisionTree::<2>::from_nodes(vec![
            DtNode::Internal { plane: AxisPlane::new(0, 1.0), left: 1, right: 2 },
            DtNode::Leaf { part: 0, count: 3, pure: true, others: vec![], bounds: BIG },
            DtNode::Leaf { part: 2, count: 4, pure: false, others: vec![3], bounds: BIG },
        ]);
        let mut out = Vec::new();
        t.query_box(&Aabb::new(Point::new([2.0, 0.0]), Point::new([3.0, 1.0])), &mut out);
        assert_eq!(out, vec![2, 3], "minority residents must be reported");
        // locate still returns the majority.
        assert_eq!(t.locate(&Point::new([2.0, 0.0])), 2);
    }

    #[test]
    fn relabel_points_matches_locate() {
        let t = small_tree();
        let pts = vec![Point::new([0.0, 0.0]), Point::new([3.0, 0.0]), Point::new([3.0, 3.0])];
        assert_eq!(t.relabel_points(&pts), vec![0, 1, 2]);
    }
}
