//! TCP backend: one persistent connection per peer pair, one reader and
//! one writer thread per connection, frames from [`crate::frame`].
//!
//! Mesh construction is split so one process *or* many can build it:
//! [`bind_mesh`] first (so every listener exists before anyone dials),
//! gossip the addresses, then [`connect_mesh`] — each rank dials every
//! lower rank and accepts from every higher one. Dials complete against
//! the kernel backlog without a live accept loop on the other side, and
//! only the accepting side blocks (on a dialer that is guaranteed to
//! dial before its own accept phase), so construction cannot deadlock
//! whether ranks connect concurrently (worker processes) or
//! sequentially (the in-process [`Tcp`] transport).

use crate::frame::{read_frame, write_frame, ReadError};
use crate::mailbox::{ChannelMailbox, MailboxConfig, StatCells, TcpLinks};
use crate::wire::Wire;
use crate::{Transport, TransportError};
use cip_telemetry::Recorder;
use crossbeam::channel::{bounded, Receiver, Sender};
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread;

/// Handshake preamble: magic, wire version, dialer's rank.
const HELLO_MAGIC: [u8; 4] = *b"CIP\x01";
const HELLO_LEN: usize = 9;

fn io_err(what: &'static str, e: std::io::Error) -> TransportError {
    TransportError::Io { what, detail: e.to_string() }
}

/// A bound, not-yet-connected mesh endpoint. Bind first, gossip
/// [`MeshListener::addr`], then [`connect_mesh`].
pub struct MeshListener {
    listener: TcpListener,
    /// The actual bound address (port resolved if bound to `:0`).
    pub addr: SocketAddr,
}

/// Bind a mesh listener on `bind` (e.g. `127.0.0.1:0`).
pub fn bind_mesh(bind: &str) -> Result<MeshListener, TransportError> {
    let listener = TcpListener::bind(bind).map_err(|e| io_err("bind", e))?;
    let addr = listener.local_addr().map_err(|e| io_err("local_addr", e))?;
    Ok(MeshListener { listener, addr })
}

/// A fully connected mesh for one rank: a socket per peer, no I/O
/// threads yet. Feed it to [`mesh_mailbox`].
pub struct MeshNode {
    rank: usize,
    streams: Vec<Option<TcpStream>>,
}

fn send_hello(s: &mut TcpStream, rank: usize) -> Result<(), TransportError> {
    let mut hello = [0u8; HELLO_LEN];
    hello[..4].copy_from_slice(&HELLO_MAGIC);
    hello[4] = crate::frame::WIRE_VERSION;
    hello[5..9].copy_from_slice(&(rank as u32).to_le_bytes());
    s.write_all(&hello).map_err(|e| io_err("send hello", e))
}

fn recv_hello(s: &mut TcpStream) -> Result<u32, TransportError> {
    let mut hello = [0u8; HELLO_LEN];
    s.read_exact(&mut hello).map_err(|e| io_err("recv hello", e))?;
    if hello[..4] != HELLO_MAGIC {
        return Err(TransportError::Handshake { detail: "bad magic".into() });
    }
    if hello[4] != crate::frame::WIRE_VERSION {
        return Err(TransportError::Handshake {
            detail: format!("wire version mismatch: peer has {}", hello[4]),
        });
    }
    Ok(u32::from_le_bytes([hello[5], hello[6], hello[7], hello[8]]))
}

/// Connect rank `rank` of `k` to every peer: dial every lower rank
/// (announcing ourselves with a hello), accept from every higher one
/// (identifying the dialer by its hello). `addrs[p]` must be peer `p`'s
/// gossiped listener address; `addrs[rank]` is ignored.
pub fn connect_mesh(
    rank: usize,
    k: usize,
    lst: MeshListener,
    addrs: &[SocketAddr],
) -> Result<MeshNode, TransportError> {
    if addrs.len() != k || rank >= k {
        return Err(TransportError::Handshake { detail: "bad mesh geometry".into() });
    }
    let mut streams: Vec<Option<TcpStream>> = (0..k).map(|_| None).collect();
    for (peer, slot) in streams.iter_mut().enumerate().take(rank) {
        let mut s = TcpStream::connect(addrs[peer]).map_err(|e| io_err("dial peer", e))?;
        send_hello(&mut s, rank)?;
        *slot = Some(s);
    }
    for _ in rank + 1..k {
        let (mut s, _) = lst.listener.accept().map_err(|e| io_err("accept peer", e))?;
        let peer = recv_hello(&mut s)? as usize;
        let valid = peer > rank && peer < k && streams[peer].is_none();
        if !valid {
            return Err(TransportError::Handshake {
                detail: format!("unexpected peer rank {peer} accepted by rank {rank}"),
            });
        }
        streams[peer] = Some(s);
    }
    Ok(MeshNode { rank, streams })
}

fn writer_loop<M: Wire>(
    mut stream: TcpStream,
    rx: Receiver<M>,
    peer: u32,
    stats: Arc<StatCells>,
    rec: Recorder,
) {
    let mut buf = Vec::with_capacity(4096);
    while let Ok(msg) = rx.recv() {
        match write_frame(&mut stream, &msg, peer, &mut buf) {
            Ok(n) => {
                stats.bytes_sent.fetch_add(n as u64, Ordering::Relaxed);
                stats.frames_sent.fetch_add(1, Ordering::Relaxed);
                rec.add("transport.bytes_sent", n as u64);
                rec.record("transport.frame_bytes", n as u64);
            }
            // A broken pipe means the peer is gone; everything still
            // queued counts as lost, which the protocol tolerates.
            Err(_) => break,
        }
    }
    let _ = stream.shutdown(Shutdown::Write);
}

fn reader_loop<M: Wire>(
    mut stream: TcpStream,
    tx: Sender<M>,
    stats: Arc<StatCells>,
    rec: Recorder,
) {
    let mut payload = Vec::new();
    loop {
        match read_frame::<M>(&mut stream, &mut payload) {
            Ok((msg, _to, n)) => {
                stats.bytes_recv.fetch_add(n as u64, Ordering::Relaxed);
                stats.frames_recv.fetch_add(1, Ordering::Relaxed);
                rec.add("transport.bytes_recv", n as u64);
                if tx.send(msg).is_err() {
                    break; // mailbox dropped
                }
            }
            // Frame-local corruption: drop the frame and keep reading;
            // the runtime's NACK repair re-requests the payload.
            Err(ReadError::Corrupt(_)) => {
                stats.recv_corrupt.fetch_add(1, Ordering::Relaxed);
                rec.add("transport.recv_corrupt", 1);
            }
            // EOF, I/O failure, or fatal desync: the lane is closed.
            Err(_) => break,
        }
    }
}

/// Spin up the per-connection I/O threads for a connected mesh node and
/// wrap them in a [`ChannelMailbox`].
pub fn mesh_mailbox<M: Wire>(
    node: MeshNode,
    cfg: &MailboxConfig,
) -> Result<ChannelMailbox<M>, TransportError> {
    let k = node.streams.len();
    let cap = cfg.capacity.max(1);
    let stats = Arc::new(StatCells::default());
    let (in_tx, in_rx) = bounded::<M>(cap);
    let mut outs: Vec<Option<Sender<M>>> = (0..k).map(|_| None).collect();
    let mut links = TcpLinks { shutters: Vec::new(), readers: Vec::new(), writers: Vec::new() };
    for (peer, slot) in node.streams.into_iter().enumerate() {
        let Some(stream) = slot else { continue };
        stream.set_nodelay(true).ok();
        let read_half = stream.try_clone().map_err(|e| io_err("clone stream", e))?;
        links.shutters.push(stream.try_clone().map_err(|e| io_err("clone stream", e))?);
        let (tx, rx) = bounded::<M>(cap);
        outs[peer] = Some(tx);
        let (wstats, wrec) = (stats.clone(), cfg.recorder.clone());
        links
            .writers
            .push(thread::spawn(move || writer_loop(stream, rx, peer as u32, wstats, wrec)));
        let (rstats, rrec, itx) = (stats.clone(), cfg.recorder.clone(), in_tx.clone());
        links.readers.push(thread::spawn(move || reader_loop(read_half, itx, rstats, rrec)));
    }
    drop(in_tx);
    Ok(ChannelMailbox::new(node.rank, outs, in_rx, stats, Some(links)))
}

/// The TCP transport: `connect` builds a `k`-rank loopback mesh inside
/// this process, each rank with its own sockets and I/O threads — the
/// bit-identity bridge between the channel oracle and the multi-process
/// deployment, which assembles the same mesh across processes via
/// [`bind_mesh`]/[`connect_mesh`]/[`mesh_mailbox`].
pub struct Tcp {
    /// Bind address for the per-rank listeners (default loopback).
    pub bind: String,
}

impl Tcp {
    /// Loopback mesh on OS-assigned ports.
    pub fn loopback() -> Self {
        Self { bind: "127.0.0.1:0".into() }
    }
}

impl Transport for Tcp {
    type Mailbox<M: Wire> = ChannelMailbox<M>;

    fn connect<M: Wire>(
        &self,
        k: usize,
        cfg: &MailboxConfig,
    ) -> Result<Vec<Self::Mailbox<M>>, TransportError> {
        let mut listeners = Vec::with_capacity(k);
        let mut addrs = Vec::with_capacity(k);
        for _ in 0..k {
            let lst = bind_mesh(&self.bind)?;
            addrs.push(lst.addr);
            listeners.push(lst);
        }
        // Connect highest rank first: its dials land in the lower
        // listeners' backlogs, so no rank ever accept-waits on a peer
        // whose dial phase has not run yet.
        let mut mailboxes = Vec::with_capacity(k);
        for (rank, lst) in listeners.into_iter().enumerate().rev() {
            let node = connect_mesh(rank, k, lst, &addrs)?;
            mailboxes.push(mesh_mailbox(node, cfg)?);
        }
        mailboxes.reverse();
        Ok(mailboxes)
    }
}
