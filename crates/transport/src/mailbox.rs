//! The bounded mailbox both backends hand to rank threads.
//!
//! One MPSC inbox per rank, one outgoing lane per peer. In-process mode
//! points the lanes straight at the peers' inboxes and moves messages
//! without serializing; the TCP backend points them at per-connection
//! writer threads and fills the inbox from per-connection readers. The
//! executor code cannot tell the difference — that is the point.
//!
//! **Deadlock freedom under bounded capacity.** A blocking send on a
//! full lane could cycle: every rank full-up sending, nobody receiving.
//! [`ChannelMailbox::send`] never blocks without making progress —
//! while its outgoing lane is full it drains its *own* inbox into a
//! local stash (served before the channel on receive, preserving
//! per-sender FIFO order). Some mailbox in any would-be cycle always
//! has a deliverable message to absorb, so the cycle cannot close, even
//! at capacity 1.

use crate::{Mailbox, RecvTimeoutError, TryRecvError};
use cip_telemetry::Recorder;
use crossbeam::channel::{
    bounded, Receiver, RecvTimeoutError as ChanTimeout, Sender, TryRecvError as ChanTry,
    TrySendError,
};
use std::collections::VecDeque;
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Tuning for mailbox construction.
#[derive(Debug, Clone)]
pub struct MailboxConfig {
    /// Per-lane bounded capacity (clamped to ≥ 1).
    pub capacity: usize,
    /// Sink for `transport.*` counters and the frame-size histogram; a
    /// disabled recorder costs nothing.
    pub recorder: Recorder,
}

impl Default for MailboxConfig {
    fn default() -> Self {
        Self { capacity: 256, recorder: Recorder::disabled() }
    }
}

/// Snapshot of a mailbox's byte-level counters. All zeros for the
/// in-process backend, which never serializes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// Frame bytes written to peers.
    pub bytes_sent: u64,
    /// Frame bytes read from peers.
    pub bytes_recv: u64,
    /// Frames written.
    pub frames_sent: u64,
    /// Frames read and decoded.
    pub frames_recv: u64,
    /// Frames dropped for CRC/decode corruption; the runtime's NACK
    /// repair re-requests their contents.
    pub recv_corrupt: u64,
}

/// Shared atomic cells behind [`TransportStats`], updated by I/O
/// threads and snapshotted by [`Mailbox::stats`].
#[derive(Default)]
pub(crate) struct StatCells {
    pub(crate) bytes_sent: AtomicU64,
    pub(crate) bytes_recv: AtomicU64,
    pub(crate) frames_sent: AtomicU64,
    pub(crate) frames_recv: AtomicU64,
    pub(crate) recv_corrupt: AtomicU64,
}

impl StatCells {
    fn snapshot(&self) -> TransportStats {
        TransportStats {
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            bytes_recv: self.bytes_recv.load(Ordering::Relaxed),
            frames_sent: self.frames_sent.load(Ordering::Relaxed),
            frames_recv: self.frames_recv.load(Ordering::Relaxed),
            recv_corrupt: self.recv_corrupt.load(Ordering::Relaxed),
        }
    }
}

/// Socket halves and I/O threads owned by a TCP-backed mailbox, torn
/// down on drop.
pub(crate) struct TcpLinks {
    /// Clones used only to `shutdown(Read)` so blocked readers wake.
    pub(crate) shutters: Vec<TcpStream>,
    pub(crate) readers: Vec<JoinHandle<()>>,
    pub(crate) writers: Vec<JoinHandle<()>>,
}

/// One rank's endpoint over either backend. See the module docs for the
/// capacity-1 deadlock-freedom argument.
pub struct ChannelMailbox<M> {
    rank: usize,
    outs: Vec<Option<Sender<M>>>,
    inbox: Receiver<M>,
    /// Incoming messages absorbed while an outgoing lane was full;
    /// served before the inbox so arrival order is preserved.
    stash: VecDeque<M>,
    stats: Arc<StatCells>,
    links: Option<TcpLinks>,
}

impl<M: Send> ChannelMailbox<M> {
    pub(crate) fn new(
        rank: usize,
        outs: Vec<Option<Sender<M>>>,
        inbox: Receiver<M>,
        stats: Arc<StatCells>,
        links: Option<TcpLinks>,
    ) -> Self {
        Self { rank, outs, inbox, stash: VecDeque::new(), stats, links }
    }

    /// This mailbox's rank (= its index in the `connect` result).
    pub fn rank(&self) -> usize {
        self.rank
    }
}

impl<M: Send> Mailbox<M> for ChannelMailbox<M> {
    fn send(&mut self, to: usize, msg: M) {
        if to == self.rank {
            return; // the executor never self-sends
        }
        let Some(tx) = self.outs.get(to).and_then(|t| t.clone()) else {
            return; // closed or unknown lane: counts as message loss
        };
        let mut pending = msg;
        loop {
            match tx.try_send(pending) {
                Ok(()) => return,
                // A dead peer drops the message — the chaos protocol
                // already treats unacknowledged sends as lost.
                Err(TrySendError::Disconnected(_)) => return,
                Err(TrySendError::Full(m)) => {
                    pending = m;
                    // Backpressure: absorb our own inbox instead of
                    // blocking, so the send graph cannot deadlock.
                    match self.inbox.try_recv() {
                        Ok(incoming) => self.stash.push_back(incoming),
                        Err(_) => std::thread::yield_now(),
                    }
                }
            }
        }
    }

    fn try_recv(&mut self) -> Result<M, TryRecvError> {
        if let Some(m) = self.stash.pop_front() {
            return Ok(m);
        }
        self.inbox.try_recv().map_err(|e| match e {
            ChanTry::Empty => TryRecvError::Empty,
            ChanTry::Disconnected => TryRecvError::Closed,
        })
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<M, RecvTimeoutError> {
        if let Some(m) = self.stash.pop_front() {
            return Ok(m);
        }
        self.inbox.recv_timeout(timeout).map_err(|e| match e {
            ChanTimeout::Timeout => RecvTimeoutError::Timeout,
            ChanTimeout::Disconnected => RecvTimeoutError::Closed,
        })
    }

    fn close_outgoing(&mut self) {
        for slot in &mut self.outs {
            *slot = None;
        }
    }

    fn stats(&self) -> TransportStats {
        self.stats.snapshot()
    }
}

impl<M> Drop for ChannelMailbox<M> {
    fn drop(&mut self) {
        let Some(links) = self.links.take() else { return };
        // Wake readers blocked on peers that outlive this mailbox.
        for s in &links.shutters {
            let _ = s.shutdown(Shutdown::Read);
        }
        // Closing the out lanes lets writers flush and half-close.
        for slot in &mut self.outs {
            *slot = None;
        }
        for w in links.writers {
            let _ = w.join();
        }
        // Drain the inbox so a reader blocked on a full lane can finish
        // its push and observe the shutdown; recv errors out once every
        // reader has exited and dropped its sender.
        while self.inbox.recv().is_ok() {}
        for r in links.readers {
            let _ = r.join();
        }
    }
}

/// Build `k` fully connected in-process mailboxes: one bounded MPSC
/// inbox per rank, every peer holding a sender clone — exactly the
/// channel topology the executor used before transports existed, plus
/// backpressure.
pub(crate) fn in_process<M: Send>(k: usize, cfg: &MailboxConfig) -> Vec<ChannelMailbox<M>> {
    let cap = cfg.capacity.max(1);
    let mut outs: Vec<Vec<Option<Sender<M>>>> = (0..k).map(|_| vec![None; k]).collect();
    let mut inboxes = Vec::with_capacity(k);
    for to in 0..k {
        let (tx, rx) = bounded::<M>(cap);
        for (from, lanes) in outs.iter_mut().enumerate() {
            if from != to {
                lanes[to] = Some(tx.clone());
            }
        }
        inboxes.push(rx);
        // The original `tx` drops here: only the k-1 peer clones keep
        // the lane open, so sender-drop semantics match the old code.
    }
    let stats = Arc::new(StatCells::default());
    outs.into_iter()
        .zip(inboxes)
        .enumerate()
        .map(|(rank, (lanes, inbox))| ChannelMailbox::new(rank, lanes, inbox, stats.clone(), None))
        .collect()
}
