//! Byte-level primitives for the versioned wire format: a little-endian
//! reader/writer pair, the IEEE CRC-32 the frame checksum uses, and the
//! [`Wire`] trait a message type implements to travel over any
//! [`Transport`](crate::Transport) backend.
//!
//! Everything here is panic-free on hostile input: every decode path
//! returns a typed [`WireError`] so a flipped bit on a socket surfaces
//! as a recoverable value, never an abort.

use std::fmt;

/// A malformed or mismatched byte sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// Fewer bytes available than the field being read requires.
    Truncated {
        /// Bytes the read needed.
        need: usize,
        /// Bytes actually available.
        have: usize,
    },
    /// The frame header carried an unknown format version.
    BadVersion {
        /// The version byte received.
        got: u8,
    },
    /// The payload tag does not name a known message variant.
    BadTag {
        /// The tag byte received.
        got: u8,
    },
    /// Header+payload CRC-32 mismatch — bit corruption in flight.
    BadChecksum,
    /// The declared payload length exceeds the sanity ceiling.
    Oversized {
        /// The declared length.
        len: usize,
    },
    /// Structurally invalid payload (bad count, trailing bytes, ...).
    Malformed {
        /// What was wrong.
        what: &'static str,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Truncated { need, have } => {
                write!(f, "truncated input: needed {need} bytes, had {have}")
            }
            Self::BadVersion { got } => write!(f, "unknown wire version {got}"),
            Self::BadTag { got } => write!(f, "unknown message tag {got}"),
            Self::BadChecksum => write!(f, "frame checksum mismatch"),
            Self::Oversized { len } => write!(f, "payload length {len} exceeds ceiling"),
            Self::Malformed { what } => write!(f, "malformed payload: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Little-endian appender over a byte vector.
pub struct ByteWriter<'a> {
    out: &'a mut Vec<u8>,
}

impl<'a> ByteWriter<'a> {
    /// Wrap `out`; writes append to it.
    pub fn new(out: &'a mut Vec<u8>) -> Self {
        Self { out }
    }

    /// Append one byte.
    pub fn u8(&mut self, v: u8) {
        self.out.push(v);
    }

    /// Append a `u16`, little-endian.
    pub fn u16(&mut self, v: u16) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `f64` as its IEEE-754 bit pattern — round-trips every
    /// value bit-exactly, NaN payloads and signed zeros included.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
}

/// Little-endian cursor over a byte slice; every read is checked.
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Start reading at the front of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated { need: n, have: self.remaining() });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, WireError> {
        let s = self.take(2)?;
        Ok(u16::from_le_bytes([s[0], s[1]]))
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        let s = self.take(4)?;
        Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        let s = self.take(8)?;
        Ok(u64::from_le_bytes([s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7]]))
    }

    /// Read an `f64` from its bit pattern.
    pub fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Assert the payload was consumed exactly.
    pub fn finish(self) -> Result<(), WireError> {
        if self.remaining() != 0 {
            return Err(WireError::Malformed { what: "trailing bytes" });
        }
        Ok(())
    }
}

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut j = 0;
        while j < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            j += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// IEEE CRC-32 over the concatenation of `parts`.
pub fn crc32(parts: &[&[u8]]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for part in parts {
        for &b in *part {
            c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
        }
    }
    !c
}

/// A message that can cross process boundaries.
///
/// Implementors provide the routing metadata the frame header carries
/// (`tag`/`from`/`step`/`seq`) plus payload encode/decode; framing,
/// checksumming, and versioning live in [`frame`](crate::frame) and are
/// shared by every message type.
pub trait Wire: Send + Sized + 'static {
    /// Variant discriminant stamped into the frame header (nonzero).
    fn tag(&self) -> u8;
    /// Originating rank.
    fn src_rank(&self) -> u32;
    /// Step the message belongs to (0 when not step-scoped).
    fn step(&self) -> u32;
    /// Per-(from, to, step) sequence number (0 when unsequenced).
    fn seq(&self) -> u64;
    /// Append the payload bytes — everything the header doesn't carry.
    fn encode_payload(&self, w: &mut ByteWriter<'_>);
    /// Rebuild a message from header metadata plus payload bytes. Must
    /// consume the reader exactly and never panic on hostile input.
    fn decode_payload(
        tag: u8,
        from: u32,
        step: u32,
        seq: u64,
        r: &mut ByteReader<'_>,
    ) -> Result<Self, WireError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vector() {
        // The canonical IEEE check value for "123456789".
        assert_eq!(crc32(&[b"123456789"]), 0xCBF4_3926);
        assert_eq!(crc32(&[b"1234", b"56789"]), 0xCBF4_3926);
        assert_eq!(crc32(&[]), 0);
    }

    #[test]
    fn reader_round_trips_writer() {
        let mut buf = Vec::new();
        let mut w = ByteWriter::new(&mut buf);
        w.u8(7);
        w.u16(513);
        w.u32(70_000);
        w.u64(1 << 40);
        w.f64(-0.0);
        w.f64(f64::NAN);
        let mut r = ByteReader::new(&buf);
        assert_eq!(r.u8(), Ok(7));
        assert_eq!(r.u16(), Ok(513));
        assert_eq!(r.u32(), Ok(70_000));
        assert_eq!(r.u64(), Ok(1 << 40));
        assert_eq!(r.f64().map(f64::to_bits), Ok((-0.0f64).to_bits()));
        assert!(r.f64().is_ok_and(f64::is_nan));
        assert_eq!(r.finish(), Ok(()));
    }

    #[test]
    fn reader_rejects_short_and_trailing_input() {
        let buf = [1u8, 2, 3];
        let mut r = ByteReader::new(&buf);
        assert_eq!(r.u32(), Err(WireError::Truncated { need: 4, have: 3 }));
        assert_eq!(r.u16(), Ok(513));
        assert!(matches!(r.finish(), Err(WireError::Malformed { .. })));
    }
}
