//! Seeded chaos proxy: a TCP relay that deterministically injures the
//! byte stream between a client and a server.
//!
//! [`ChaosProxy`] binds its own loopback port, dials the real target
//! for every accepted connection, and relays bytes in both directions —
//! except when the seeded [`ChaosPlan`] says otherwise. Per relay event
//! (one read chunk, one direction) the plan draws a fate from a single
//! SplitMix64 hash of `(seed, connection, direction, event)`, mirroring
//! the executor's `FaultPlan` discipline: permille rates evaluated in a
//! fixed order, the whole schedule a pure function of the seed. Faults
//! model the transport failure classes a resilient client must survive:
//!
//! * **delay** — the chunk is forwarded late (reordering across
//!   connections, latency spikes);
//! * **stall** — a long pause, sized to trip client read timeouts;
//! * **truncate** — half the chunk is forwarded, then both directions
//!   are torn down: a frame dies mid-flight, exercising the receiver's
//!   CRC/truncation handling;
//! * **close** — the connection is torn down between chunks.
//!
//! The proxy never rewrites bytes — corruption *content* is covered by
//! the frame-level tests; this layer injects *timing and connectivity*
//! faults, so a CRC-checked stream sees only clean frames or clean
//! breaks. Counters land in a [`Recorder`] under `chaos.proxy.*`.

use cip_telemetry::Recorder;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// SplitMix64 step — duplicated from `cip_runtime::fault` (itself a
/// duplicate of the partitioner's child-seed mixer) because the
/// transport crate sits below the runtime in the dependency graph. The
/// constants are part of the seeding discipline: every seeded fault
/// source in the tree draws from this exact mixer.
#[inline]
fn splitmix(seed: u64, salt: u64) -> u64 {
    let mut z = seed.wrapping_add(salt.wrapping_mul(0x9E3779B97F4A7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// The fate of one relay event (one read chunk in one direction).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosFate {
    /// Relay the chunk unmodified.
    Forward,
    /// Relay after [`ChaosPlan::delay`].
    Delay,
    /// Relay after [`ChaosPlan::stall`] (sized to trip read timeouts).
    Stall,
    /// Forward half the chunk, then tear the connection down — a frame
    /// dies mid-flight.
    TruncateClose,
    /// Tear the connection down between chunks.
    Close,
}

/// A deterministic, seeded injury schedule for one proxy.
///
/// Rates are permille (0..=1000), evaluated delay → stall → truncate →
/// close on a single per-event hash — the same discipline as the
/// executor's `FaultPlan`, so two proxies with the same seed injure
/// identical byte streams identically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosPlan {
    /// Seed of the per-event fate hash.
    pub seed: u64,
    /// Permille of chunks delayed by [`ChaosPlan::delay`].
    pub delay_permille: u16,
    /// Permille of chunks stalled by [`ChaosPlan::stall`].
    pub stall_permille: u16,
    /// Permille of chunks truncated mid-flight (connection dies).
    pub truncate_permille: u16,
    /// Permille of chunk boundaries where the connection just closes.
    pub close_permille: u16,
    /// How long a delayed chunk waits.
    pub delay: Duration,
    /// How long a stalled chunk waits.
    pub stall: Duration,
}

impl ChaosPlan {
    /// A plan that injures nothing — the baseline: a quiet proxy on the
    /// path must not change any result.
    pub fn quiet(seed: u64) -> Self {
        Self {
            seed,
            delay_permille: 0,
            stall_permille: 0,
            truncate_permille: 0,
            close_permille: 0,
            delay: Duration::from_millis(5),
            stall: Duration::from_millis(200),
        }
    }

    /// A modest default mix: 5% delays, 2% truncations, 2% closes (no
    /// stalls — add those only when the client under test has a read
    /// timeout to trip).
    pub fn chaos(seed: u64) -> Self {
        Self { delay_permille: 50, truncate_permille: 20, close_permille: 20, ..Self::quiet(seed) }
    }

    /// The fate of relay event `event` on direction `dir` (0 = client →
    /// server, 1 = server → client) of connection `conn`.
    pub fn fate(&self, conn: u64, dir: u8, event: u64) -> ChaosFate {
        let total = self.delay_permille
            + self.stall_permille
            + self.truncate_permille
            + self.close_permille;
        if total == 0 {
            return ChaosFate::Forward;
        }
        let ident = (conn << 33) ^ (u64::from(dir) << 32) ^ event;
        let x = (splitmix(self.seed, ident) % 1000) as u16;
        if x < self.delay_permille {
            ChaosFate::Delay
        } else if x < self.delay_permille + self.stall_permille {
            ChaosFate::Stall
        } else if x < self.delay_permille + self.stall_permille + self.truncate_permille {
            ChaosFate::TruncateClose
        } else if x < total {
            ChaosFate::Close
        } else {
            ChaosFate::Forward
        }
    }
}

struct ProxyShared {
    plan: ChaosPlan,
    target: SocketAddr,
    rec: Recorder,
    stop: AtomicBool,
    conn_ids: AtomicU64,
}

/// A running chaos proxy. Point the client at [`ChaosProxy::addr`]; the
/// proxy relays to the target it was started with, injuring the stream
/// per its [`ChaosPlan`]. Stopped by [`ChaosProxy::shutdown`] (also on
/// drop).
pub struct ChaosProxy {
    addr: SocketAddr,
    shared: Arc<ProxyShared>,
    accept: Option<JoinHandle<()>>,
}

impl ChaosProxy {
    /// Binds a loopback listener and starts relaying to `target`.
    pub fn start(target: SocketAddr, plan: ChaosPlan, rec: Recorder) -> std::io::Result<Self> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(ProxyShared {
            plan,
            target,
            rec,
            stop: AtomicBool::new(false),
            conn_ids: AtomicU64::new(0),
        });
        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::spawn(move || accept_loop(&listener, &accept_shared));
        Ok(Self { addr, shared, accept: Some(accept) })
    }

    /// Where clients should connect.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting and asks live relays to wind down (they notice
    /// within one read-timeout tick).
    pub fn shutdown(&mut self) {
        if self.shared.stop.swap(true, Ordering::AcqRel) {
            return;
        }
        // Nudge the accept loop out of a blocking accept().
        TcpStream::connect_timeout(&self.addr, Duration::from_millis(250)).ok();
        if let Some(h) = self.accept.take() {
            h.join().ok();
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<ProxyShared>) {
    loop {
        match listener.accept() {
            Ok((client, _)) => {
                if shared.stop.load(Ordering::Acquire) {
                    return;
                }
                let conn = shared.conn_ids.fetch_add(1, Ordering::Relaxed);
                shared.rec.add("chaos.proxy.connections", 1);
                let Ok(upstream) =
                    TcpStream::connect_timeout(&shared.target, Duration::from_secs(5))
                else {
                    // Target unreachable: the refused connection *is*
                    // the fault the client observes.
                    shared.rec.add("chaos.proxy.dial_failed", 1);
                    drop(client);
                    continue;
                };
                client.set_nodelay(true).ok();
                upstream.set_nodelay(true).ok();
                spawn_relay(shared, conn, 0, &client, &upstream);
                spawn_relay(shared, conn, 1, &upstream, &client);
            }
            Err(_) => {
                if shared.stop.load(Ordering::Acquire) {
                    return;
                }
            }
        }
    }
}

/// Spawns one direction of a relay (detached: it exits on EOF, a
/// connection fault, or the proxy's stop flag).
fn spawn_relay(shared: &Arc<ProxyShared>, conn: u64, dir: u8, from: &TcpStream, to: &TcpStream) {
    let (Ok(src), Ok(dst)) = (from.try_clone(), to.try_clone()) else {
        shared.rec.add("chaos.proxy.dial_failed", 1);
        return;
    };
    let shared = Arc::clone(shared);
    std::thread::spawn(move || relay(&shared, conn, dir, src, dst));
}

/// Tears down both directions of a relayed connection.
fn sever(src: &TcpStream, dst: &TcpStream) {
    src.shutdown(Shutdown::Both).ok();
    dst.shutdown(Shutdown::Both).ok();
}

fn relay(shared: &ProxyShared, conn: u64, dir: u8, mut src: TcpStream, mut dst: TcpStream) {
    // A short read timeout keeps the loop responsive to the stop flag
    // without busy-waiting.
    src.set_read_timeout(Some(Duration::from_millis(50))).ok();
    let mut buf = [0u8; 4096];
    let mut event = 0u64;
    loop {
        if shared.stop.load(Ordering::Acquire) {
            sever(&src, &dst);
            return;
        }
        let n = match src.read(&mut buf) {
            Ok(0) => {
                // Clean EOF: propagate the half-close downstream so the
                // peer sees it too.
                dst.shutdown(Shutdown::Write).ok();
                return;
            }
            Ok(n) => n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => {
                sever(&src, &dst);
                return;
            }
        };
        let fate = shared.plan.fate(conn, dir, event);
        event += 1;
        match fate {
            ChaosFate::Forward => {}
            ChaosFate::Delay => {
                shared.rec.add("chaos.proxy.delayed", 1);
                std::thread::sleep(shared.plan.delay);
            }
            ChaosFate::Stall => {
                shared.rec.add("chaos.proxy.stalled", 1);
                std::thread::sleep(shared.plan.stall);
            }
            ChaosFate::TruncateClose => {
                shared.rec.add("chaos.proxy.truncated", 1);
                // Half a chunk, then the wire goes dark mid-frame.
                dst.write_all(&buf[..n / 2]).ok();
                sever(&src, &dst);
                return;
            }
            ChaosFate::Close => {
                shared.rec.add("chaos.proxy.closed", 1);
                sever(&src, &dst);
                return;
            }
        }
        if dst.write_all(&buf[..n]).is_err() {
            sever(&src, &dst);
            return;
        }
        shared.rec.add("chaos.proxy.forwarded", 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fates_are_deterministic_and_seed_sensitive() {
        let a = ChaosPlan::chaos(7);
        let b = ChaosPlan::chaos(7);
        let c = ChaosPlan::chaos(8);
        let fa: Vec<ChaosFate> = (0..500).map(|e| a.fate(1, 0, e)).collect();
        let fb: Vec<ChaosFate> = (0..500).map(|e| b.fate(1, 0, e)).collect();
        let fc: Vec<ChaosFate> = (0..500).map(|e| c.fate(1, 0, e)).collect();
        assert_eq!(fa, fb, "same seed, same schedule");
        assert_ne!(fa, fc, "different seed, different schedule");
        let forwarded = fa.iter().filter(|&&f| f == ChaosFate::Forward).count();
        assert!(forwarded > 400, "forwarded {forwarded}/500");
        assert!(forwarded < 500, "chaos plan never injected anything");
        // Directions draw independent streams.
        let rev: Vec<ChaosFate> = (0..500).map(|e| a.fate(1, 1, e)).collect();
        assert_ne!(fa, rev);
    }

    #[test]
    fn quiet_plan_always_forwards() {
        let plan = ChaosPlan::quiet(3);
        for conn in 0..4 {
            for dir in 0..2 {
                for event in 0..100 {
                    assert_eq!(plan.fate(conn, dir, event), ChaosFate::Forward);
                }
            }
        }
    }

    #[test]
    fn quiet_proxy_relays_bytes_both_ways() {
        // Echo server: read a chunk, write it back upper-cased.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let target = listener.local_addr().unwrap();
        let echo = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let mut buf = [0u8; 64];
            let n = s.read(&mut buf).unwrap();
            let upper: Vec<u8> = buf[..n].iter().map(|b| b.to_ascii_uppercase()).collect();
            s.write_all(&upper).unwrap();
        });
        let rec = Recorder::enabled();
        let mut proxy = ChaosProxy::start(target, ChaosPlan::quiet(1), rec.clone()).unwrap();
        let mut client = TcpStream::connect(proxy.addr()).unwrap();
        client.write_all(b"hello").unwrap();
        let mut reply = [0u8; 5];
        client.read_exact(&mut reply).unwrap();
        assert_eq!(&reply, b"HELLO");
        echo.join().unwrap();
        proxy.shutdown();
        assert!(rec.counter_value("chaos.proxy.forwarded") >= 2);
        assert_eq!(rec.counter_value("chaos.proxy.connections"), 1);
    }

    #[test]
    fn close_heavy_plan_severs_connections() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let target = listener.local_addr().unwrap();
        // A sink that accepts and holds connections open.
        let sink = std::thread::spawn(move || {
            let mut held = Vec::new();
            listener.set_nonblocking(true).ok();
            let deadline = std::time::Instant::now() + Duration::from_secs(5);
            while std::time::Instant::now() < deadline && held.is_empty() {
                if let Ok((s, _)) = listener.accept() {
                    held.push(s);
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            std::thread::sleep(Duration::from_millis(300));
        });
        let rec = Recorder::enabled();
        let plan = ChaosPlan { close_permille: 1000, ..ChaosPlan::quiet(9) };
        let mut proxy = ChaosProxy::start(target, plan, rec.clone()).unwrap();
        let mut client = TcpStream::connect(proxy.addr()).unwrap();
        client.write_all(b"doomed").unwrap();
        client.set_read_timeout(Some(Duration::from_secs(5))).ok();
        let mut buf = [0u8; 8];
        // The first chunk draws Close: the proxy severs, so the client
        // sees EOF (or a reset), never a hang.
        let got = client.read(&mut buf);
        assert!(matches!(got, Ok(0) | Err(_)), "expected severed connection, got {got:?}");
        proxy.shutdown();
        sink.join().unwrap();
        assert_eq!(rec.counter_value("chaos.proxy.closed"), 1);
    }
}
