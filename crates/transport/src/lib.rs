//! Pluggable rank-to-rank message transport.
//!
//! The runtime executor (cip-runtime) speaks to its peers through a
//! per-rank [`Mailbox`]: send to any peer, receive from all of them
//! with a timeout — exactly the semantics of the crossbeam channels the
//! executor grew up on. This crate makes that surface a trait with two
//! backends:
//!
//! * [`InProcess`] — bounded crossbeam channels, no serialization. The
//!   default, and the bit-identity oracle every other backend is
//!   measured against.
//! * [`tcp::Tcp`] — one persistent TCP connection per peer pair,
//!   length-prefixed CRC-checked binary frames ([`frame`]), a reader
//!   and a writer thread per connection. The same mesh can be built
//!   across OS processes via [`tcp::bind_mesh`] / [`tcp::connect_mesh`]
//!   / [`tcp::mesh_mailbox`] — that is what the `cip-worker` binary
//!   does.
//!
//! Messages implement [`Wire`] ([`wire`] has the primitives); transport
//! failures are typed [`TransportError`]s, never panics, so the
//! runtime's retry/NACK protocol handles a corrupt frame on a real
//! socket the same way it handles an injected drop.

pub mod chaos;
pub mod frame;
pub mod mailbox;
pub mod tcp;
pub mod wire;

pub use frame::{FrameHeader, ReadError, HEADER_LEN, MAX_PAYLOAD, WIRE_VERSION};
pub use mailbox::{ChannelMailbox, MailboxConfig, TransportStats};
pub use wire::{ByteReader, ByteWriter, Wire, WireError};

use std::fmt;
use std::time::Duration;

/// Why [`Mailbox::try_recv`] returned nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// No message queued right now.
    Empty,
    /// Every sending lane has closed; nothing will ever arrive.
    Closed,
}

/// Why [`Mailbox::recv_timeout`] returned nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// Nothing arrived within the timeout.
    Timeout,
    /// Every sending lane has closed; nothing will ever arrive.
    Closed,
}

/// A transport-layer failure: connection setup, socket I/O, or a fatal
/// wire-format violation.
#[derive(Debug)]
pub enum TransportError {
    /// Byte-level decode failure outside a stream, or one fatal enough
    /// to kill a stream (version mismatch, absurd length).
    Wire(WireError),
    /// Socket or stream failure; `what` names the operation.
    Io {
        /// The operation that failed.
        what: &'static str,
        /// The underlying I/O error, stringified.
        detail: String,
    },
    /// A peer spoke the wrong protocol during connection setup.
    Handshake {
        /// What was wrong.
        detail: String,
    },
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Wire(e) => write!(f, "wire decode failed: {e}"),
            Self::Io { what, detail } => write!(f, "transport i/o failed ({what}): {detail}"),
            Self::Handshake { detail } => write!(f, "transport handshake failed: {detail}"),
        }
    }
}

impl std::error::Error for TransportError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Wire(e) => Some(e),
            _ => None,
        }
    }
}

impl From<WireError> for TransportError {
    fn from(e: WireError) -> Self {
        Self::Wire(e)
    }
}

/// One rank's endpoint: send to any peer, receive from all of them.
///
/// Contract (what the executor protocol relies on):
/// * `send` must not deadlock under bounded capacity — implementations
///   make progress by absorbing their own inbox while an outgoing lane
///   is full; per-sender FIFO order is preserved.
/// * Sends to dead or closed peers are dropped silently; the runtime's
///   sequence/NACK protocol treats them as message loss.
/// * After every peer calls [`Mailbox::close_outgoing`] (or drops), a
///   receiver drains what is queued and then sees `Closed`.
pub trait Mailbox<M>: Send {
    /// Queue `msg` for rank `to`.
    fn send(&mut self, to: usize, msg: M);
    /// Non-blocking receive from any peer.
    fn try_recv(&mut self) -> Result<M, TryRecvError>;
    /// Blocking receive with a timeout.
    fn recv_timeout(&mut self, timeout: Duration) -> Result<M, RecvTimeoutError>;
    /// Declare that this rank will send nothing further; peers' drains
    /// observe `Closed` once every rank has done so.
    fn close_outgoing(&mut self) {}
    /// Byte/frame counters (zeros for backends that never serialize).
    fn stats(&self) -> TransportStats {
        TransportStats::default()
    }
}

/// Factory for the `k` connected per-rank mailboxes of one executor
/// run.
pub trait Transport {
    /// The mailbox type handed to each rank thread.
    type Mailbox<M: Wire>: Mailbox<M>;

    /// Build `k` mutually connected mailboxes; index = rank.
    fn connect<M: Wire>(
        &self,
        k: usize,
        cfg: &MailboxConfig,
    ) -> Result<Vec<Self::Mailbox<M>>, TransportError>;
}

/// The in-process backend: bounded channels, no serialization — the
/// default and the oracle.
#[derive(Debug, Clone, Copy, Default)]
pub struct InProcess;

impl Transport for InProcess {
    type Mailbox<M: Wire> = ChannelMailbox<M>;

    fn connect<M: Wire>(
        &self,
        k: usize,
        cfg: &MailboxConfig,
    ) -> Result<Vec<Self::Mailbox<M>>, TransportError> {
        Ok(mailbox::in_process(k, cfg))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wire::{ByteReader, ByteWriter};

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    struct Ping {
        from: u32,
        n: u64,
    }

    impl Wire for Ping {
        fn tag(&self) -> u8 {
            1
        }
        fn src_rank(&self) -> u32 {
            self.from
        }
        fn step(&self) -> u32 {
            0
        }
        fn seq(&self) -> u64 {
            self.n
        }
        fn encode_payload(&self, w: &mut ByteWriter<'_>) {
            w.u64(self.n);
        }
        fn decode_payload(
            tag: u8,
            from: u32,
            _step: u32,
            _seq: u64,
            r: &mut ByteReader<'_>,
        ) -> Result<Self, WireError> {
            if tag != 1 {
                return Err(WireError::BadTag { got: tag });
            }
            Ok(Ping { from, n: r.u64()? })
        }
    }

    fn ring_trip<T: Transport>(transport: &T, k: usize, capacity: usize) {
        // Each rank sends `rounds` pings to its right neighbour and
        // receives as many from the left — with capacity 1 this
        // saturates every lane and exercises the anti-deadlock stash.
        let rounds = 64u64;
        let cfg = MailboxConfig { capacity, ..Default::default() };
        let mailboxes = transport.connect::<Ping>(k, &cfg).unwrap();
        let got: Vec<u64> = std::thread::scope(|s| {
            let handles: Vec<_> = mailboxes
                .into_iter()
                .enumerate()
                .map(|(r, mut mb)| {
                    s.spawn(move || {
                        for n in 0..rounds {
                            mb.send((r + 1) % k, Ping { from: r as u32, n });
                        }
                        let mut sum = 0;
                        for _ in 0..rounds {
                            let p = mb
                                .recv_timeout(std::time::Duration::from_secs(10))
                                .expect("ping arrives");
                            assert_eq!(p.from as usize, (r + k - 1) % k);
                            sum += p.n;
                        }
                        mb.close_outgoing();
                        sum
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let expect = rounds * (rounds - 1) / 2;
        assert!(got.iter().all(|&s| s == expect), "{got:?}");
    }

    #[test]
    fn in_process_ring_survives_capacity_one() {
        ring_trip(&InProcess, 4, 1);
        ring_trip(&InProcess, 3, 256);
    }

    #[test]
    fn tcp_ring_survives_capacity_one() {
        ring_trip(&tcp::Tcp::loopback(), 4, 1);
    }

    #[test]
    fn tcp_carries_stats() {
        let cfg = MailboxConfig::default();
        let mailboxes = tcp::Tcp::loopback().connect::<Ping>(2, &cfg).unwrap();
        let stats = std::thread::scope(|s| {
            let handles: Vec<_> = mailboxes
                .into_iter()
                .enumerate()
                .map(|(r, mut mb)| {
                    s.spawn(move || {
                        mb.send(1 - r, Ping { from: r as u32, n: 7 });
                        let p = mb.recv_timeout(std::time::Duration::from_secs(10)).unwrap();
                        assert_eq!(p.n, 7);
                        // Stats are updated by I/O threads; wait for
                        // the send side to be flushed and counted.
                        let deadline =
                            std::time::Instant::now() + std::time::Duration::from_secs(10);
                        while mb.stats().frames_sent < 1 && std::time::Instant::now() < deadline {
                            std::thread::yield_now();
                        }
                        mb.stats()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect::<Vec<_>>()
        });
        for st in stats {
            assert_eq!(st.frames_sent, 1);
            assert_eq!(st.frames_recv, 1);
            assert_eq!(st.bytes_sent, (HEADER_LEN + 8) as u64);
            assert_eq!(st.bytes_recv, st.bytes_sent);
            assert_eq!(st.recv_corrupt, 0);
        }
    }
}
