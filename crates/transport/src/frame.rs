//! Length-prefixed, CRC-checked frames — the unit every TCP byte
//! stream, corruption test, and future remote backend agrees on.
//!
//! Layout (little-endian, [`HEADER_LEN`] = 30 bytes):
//!
//! ```text
//! offset  0    1    2      6      10     14     22     26     30..
//!         ver  tag  from   to     step   seq    len    crc    payload
//!         u8   u8   u32    u32    u32    u64    u32    u32
//! ```
//!
//! The CRC-32 covers the first 26 header bytes plus the payload, so a
//! flipped bit anywhere in a frame is caught. Failure taxonomy on the
//! read side: a checksum or payload-decode failure is **frame-local**
//! (the stream stays framed; the runtime's NACK repair re-requests the
//! lost message), while a version mismatch or an absurd length means
//! the length field itself cannot be trusted and the stream is dead.

use crate::wire::{crc32, ByteReader, ByteWriter, Wire, WireError};
use std::io::{self, Read, Write};

/// Wire-format version stamped into every frame header.
pub const WIRE_VERSION: u8 = 1;
/// Fixed frame header size in bytes.
pub const HEADER_LEN: usize = 30;
/// Bytes of the header covered by the checksum (all but the CRC field).
const CRC_COVER: usize = HEADER_LEN - 4;
/// Sanity ceiling on the declared payload length (64 MiB).
pub const MAX_PAYLOAD: usize = 1 << 26;

/// A decoded frame header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// Wire-format version (must equal [`WIRE_VERSION`]).
    pub version: u8,
    /// Message variant discriminant.
    pub tag: u8,
    /// Originating rank.
    pub from: u32,
    /// Destination rank.
    pub to: u32,
    /// Step the message belongs to.
    pub step: u32,
    /// Per-(from, to, step) sequence number.
    pub seq: u64,
    /// Payload length in bytes.
    pub len: u32,
    /// CRC-32 over the header (sans this field) plus the payload.
    pub crc: u32,
}

/// Append one frame carrying `msg`, addressed to rank `to`, onto `out`.
pub fn encode_frame<M: Wire>(msg: &M, to: u32, out: &mut Vec<u8>) {
    let start = out.len();
    {
        let mut w = ByteWriter::new(out);
        w.u8(WIRE_VERSION);
        w.u8(msg.tag());
        w.u32(msg.src_rank());
        w.u32(to);
        w.u32(msg.step());
        w.u64(msg.seq());
        w.u32(0); // len, patched below
        w.u32(0); // crc, patched below
        msg.encode_payload(&mut w);
    }
    let len = (out.len() - start - HEADER_LEN) as u32;
    out[start + 22..start + 26].copy_from_slice(&len.to_le_bytes());
    let crc = {
        let (head, payload) = out[start..].split_at(HEADER_LEN);
        crc32(&[&head[..CRC_COVER], payload])
    };
    out[start + 26..start + 30].copy_from_slice(&crc.to_le_bytes());
}

/// Parse a header from at least [`HEADER_LEN`] bytes, validating the
/// version and the length ceiling.
pub fn parse_header(buf: &[u8]) -> Result<FrameHeader, WireError> {
    let mut r = ByteReader::new(buf);
    let version = r.u8()?;
    let tag = r.u8()?;
    let from = r.u32()?;
    let to = r.u32()?;
    let step = r.u32()?;
    let seq = r.u64()?;
    let len = r.u32()?;
    let crc = r.u32()?;
    if version != WIRE_VERSION {
        return Err(WireError::BadVersion { got: version });
    }
    if len as usize > MAX_PAYLOAD {
        return Err(WireError::Oversized { len: len as usize });
    }
    Ok(FrameHeader { version, tag, from, to, step, seq, len, crc })
}

/// Decode one frame from the front of `buf`. Returns the message, its
/// destination rank, and the bytes consumed.
pub fn decode_frame<M: Wire>(buf: &[u8]) -> Result<(M, u32, usize), WireError> {
    if buf.len() < HEADER_LEN {
        return Err(WireError::Truncated { need: HEADER_LEN, have: buf.len() });
    }
    let h = parse_header(buf)?;
    let total = HEADER_LEN + h.len as usize;
    if buf.len() < total {
        return Err(WireError::Truncated { need: total, have: buf.len() });
    }
    let payload = &buf[HEADER_LEN..total];
    if crc32(&[&buf[..CRC_COVER], payload]) != h.crc {
        return Err(WireError::BadChecksum);
    }
    let mut r = ByteReader::new(payload);
    let msg = M::decode_payload(h.tag, h.from, h.step, h.seq, &mut r)?;
    r.finish()?;
    Ok((msg, h.to, total))
}

/// Why reading a frame off a byte stream failed.
#[derive(Debug)]
pub enum ReadError {
    /// The peer closed the stream cleanly between frames.
    Eof,
    /// I/O failure, including mid-frame disconnects.
    Io(io::Error),
    /// Frame-local corruption; the stream remains framed, the next
    /// frame can still be read, and the runtime's NACK repair recovers
    /// the lost message.
    Corrupt(WireError),
    /// Unrecoverable format violation — the length field cannot be
    /// trusted, so resynchronisation is impossible.
    Fatal(WireError),
}

/// Encode and write one frame; returns the frame's total byte length.
/// `buf` is reusable scratch.
pub fn write_frame<M: Wire>(
    w: &mut impl Write,
    msg: &M,
    to: u32,
    buf: &mut Vec<u8>,
) -> io::Result<usize> {
    buf.clear();
    encode_frame(msg, to, buf);
    w.write_all(buf)?;
    Ok(buf.len())
}

/// Read one frame from a byte stream. `payload` is reusable scratch.
/// Returns the message, its destination rank, and the frame's total
/// byte length.
pub fn read_frame<M: Wire>(
    r: &mut impl Read,
    payload: &mut Vec<u8>,
) -> Result<(M, u32, usize), ReadError> {
    let mut head = [0u8; HEADER_LEN];
    // Read the first byte separately so a clean close between frames is
    // distinguishable from a frame truncated by a dying peer.
    loop {
        let mut first = [0u8; 1];
        match r.read(&mut first) {
            Ok(0) => return Err(ReadError::Eof),
            Ok(_) => {
                head[0] = first[0];
                break;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(ReadError::Io(e)),
        }
    }
    r.read_exact(&mut head[1..]).map_err(ReadError::Io)?;
    let h = match parse_header(&head) {
        Ok(h) => h,
        Err(e) => return Err(ReadError::Fatal(e)),
    };
    payload.clear();
    payload.resize(h.len as usize, 0);
    r.read_exact(payload).map_err(ReadError::Io)?;
    let total = HEADER_LEN + h.len as usize;
    if crc32(&[&head[..CRC_COVER], payload.as_slice()]) != h.crc {
        return Err(ReadError::Corrupt(WireError::BadChecksum));
    }
    let mut pr = ByteReader::new(payload);
    match M::decode_payload(h.tag, h.from, h.step, h.seq, &mut pr).and_then(|m| {
        pr.finish()?;
        Ok(m)
    }) {
        Ok(msg) => Ok((msg, h.to, total)),
        Err(e) => Err(ReadError::Corrupt(e)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal test message: an opaque byte blob with routing metadata.
    #[derive(Debug, Clone, PartialEq, Eq)]
    struct Blob {
        from: u32,
        step: u32,
        seq: u64,
        data: Vec<u8>,
    }

    impl Wire for Blob {
        fn tag(&self) -> u8 {
            1
        }
        fn src_rank(&self) -> u32 {
            self.from
        }
        fn step(&self) -> u32 {
            self.step
        }
        fn seq(&self) -> u64 {
            self.seq
        }
        fn encode_payload(&self, w: &mut ByteWriter<'_>) {
            w.u32(self.data.len() as u32);
            for &b in &self.data {
                w.u8(b);
            }
        }
        fn decode_payload(
            tag: u8,
            from: u32,
            step: u32,
            seq: u64,
            r: &mut ByteReader<'_>,
        ) -> Result<Self, WireError> {
            if tag != 1 {
                return Err(WireError::BadTag { got: tag });
            }
            let n = r.u32()? as usize;
            if n > r.remaining() {
                return Err(WireError::Malformed { what: "blob length" });
            }
            let mut data = Vec::with_capacity(n);
            for _ in 0..n {
                data.push(r.u8()?);
            }
            Ok(Blob { from, step, seq, data })
        }
    }

    fn blob() -> Blob {
        Blob { from: 3, step: 17, seq: 0xDEAD_BEEF_CAFE, data: vec![9, 8, 7, 6, 5] }
    }

    #[test]
    fn frame_round_trips() {
        let mut buf = Vec::new();
        encode_frame(&blob(), 11, &mut buf);
        let (m, to, n) = decode_frame::<Blob>(&buf).unwrap();
        assert_eq!(m, blob());
        assert_eq!(to, 11);
        assert_eq!(n, buf.len());
    }

    #[test]
    fn every_single_bit_flip_is_caught() {
        let mut clean = Vec::new();
        encode_frame(&blob(), 2, &mut clean);
        for bit in 0..clean.len() * 8 {
            let mut buf = clean.clone();
            buf[bit / 8] ^= 1 << (bit % 8);
            assert!(decode_frame::<Blob>(&buf).is_err(), "bit flip at {bit} went undetected");
        }
    }

    #[test]
    fn truncation_and_bad_version_are_typed() {
        let mut buf = Vec::new();
        encode_frame(&blob(), 2, &mut buf);
        for cut in 0..buf.len() {
            assert!(matches!(decode_frame::<Blob>(&buf[..cut]), Err(WireError::Truncated { .. })));
        }
        buf[0] = WIRE_VERSION + 1;
        assert!(matches!(decode_frame::<Blob>(&buf), Err(WireError::BadVersion { .. })));
    }

    #[test]
    fn stream_reader_skips_corrupt_frames_and_sees_clean_eof() {
        let mut stream = Vec::new();
        encode_frame(&blob(), 2, &mut stream);
        let first_len = stream.len();
        encode_frame(&blob(), 4, &mut stream);
        // Corrupt a payload byte of the first frame only.
        stream[first_len - 1] ^= 0x40;
        let mut cursor = io::Cursor::new(stream);
        let mut scratch = Vec::new();
        assert!(matches!(
            read_frame::<Blob>(&mut cursor, &mut scratch),
            Err(ReadError::Corrupt(WireError::BadChecksum))
        ));
        let (m, to, _) = read_frame::<Blob>(&mut cursor, &mut scratch).unwrap();
        assert_eq!((m, to), (blob(), 4));
        assert!(matches!(read_frame::<Blob>(&mut cursor, &mut scratch), Err(ReadError::Eof)));
    }
}
