//! `k`-way partitions with cached per-part weights.

use crate::csr::Graph;
use serde::{Deserialize, Serialize};

/// A `k`-way partition of a graph's vertices with cached per-part weight
/// sums for every constraint.
///
/// The cache makes the balance checks inside FM / k-way refinement O(ncon)
/// per candidate move instead of O(n).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Partition {
    k: usize,
    ncon: usize,
    assignment: Vec<u32>,
    /// Flattened `k * ncon` per-part weight sums.
    part_weights: Vec<i64>,
    /// Total weight per constraint (denominator of the imbalance ratio).
    totals: Vec<i64>,
}

impl Partition {
    /// Wraps an existing assignment, computing the per-part weight cache.
    ///
    /// # Panics
    /// Panics if `assignment.len() != g.nv()` or any part id is `>= k`.
    pub fn from_assignment(g: &Graph, k: usize, assignment: Vec<u32>) -> Self {
        assert_eq!(assignment.len(), g.nv(), "one part id per vertex");
        let ncon = g.ncon();
        let mut part_weights = vec![0i64; k * ncon];
        for (v, &p) in assignment.iter().enumerate() {
            assert!((p as usize) < k, "part id {p} out of range for k={k}");
            let base = p as usize * ncon;
            for (j, w) in g.vwgt(v as u32).iter().enumerate() {
                part_weights[base + j] += w;
            }
        }
        Self { k, ncon, assignment, part_weights, totals: g.total_vwgt() }
    }

    /// The all-zeros partition (everything in part 0).
    pub fn trivial(g: &Graph, k: usize) -> Self {
        Self::from_assignment(g, k, vec![0; g.nv()])
    }

    /// Number of parts.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of constraints.
    #[inline]
    pub fn ncon(&self) -> usize {
        self.ncon
    }

    /// Part of vertex `v`.
    #[inline]
    pub fn part(&self, v: u32) -> u32 {
        self.assignment[v as usize]
    }

    /// The raw assignment vector.
    #[inline]
    pub fn assignment(&self) -> &[u32] {
        &self.assignment
    }

    /// Consumes the partition, returning the assignment vector.
    pub fn into_assignment(self) -> Vec<u32> {
        self.assignment
    }

    /// Weight of part `p` under constraint `j`.
    #[inline]
    pub fn part_weight(&self, p: u32, j: usize) -> i64 {
        self.part_weights[p as usize * self.ncon + j]
    }

    /// Total vertex weight under constraint `j`.
    #[inline]
    pub fn total_weight(&self, j: usize) -> i64 {
        self.totals[j]
    }

    /// Moves vertex `v` to part `to`, updating the weight cache.
    pub fn move_vertex(&mut self, g: &Graph, v: u32, to: u32) {
        let from = self.assignment[v as usize];
        if from == to {
            return;
        }
        let fb = from as usize * self.ncon;
        let tb = to as usize * self.ncon;
        for (j, w) in g.vwgt(v).iter().enumerate() {
            self.part_weights[fb + j] -= w;
            self.part_weights[tb + j] += w;
        }
        self.assignment[v as usize] = to;
    }

    /// Load imbalance under constraint `j`:
    /// `max_p w_j(V_p) / (w_j(V) / k)`. Returns 1.0 when the constraint has
    /// zero total weight (vacuously balanced).
    pub fn imbalance(&self, j: usize) -> f64 {
        if self.totals[j] == 0 {
            return 1.0;
        }
        let avg = self.totals[j] as f64 / self.k as f64;
        let max = (0..self.k).map(|p| self.part_weights[p * self.ncon + j]).max().unwrap_or(0);
        max as f64 / avg
    }

    /// The worst load imbalance across all constraints.
    pub fn max_imbalance(&self) -> f64 {
        (0..self.ncon).map(|j| self.imbalance(j)).fold(1.0, f64::max)
    }

    /// Whether every constraint's imbalance is within `1 + eps`.
    pub fn is_balanced(&self, eps: f64) -> bool {
        (0..self.ncon).all(|j| self.imbalance(j) <= 1.0 + eps + 1e-12)
    }

    /// Number of vertices assigned to part `p`.
    pub fn part_size(&self, p: u32) -> usize {
        self.assignment.iter().filter(|&&q| q == p).count()
    }

    /// Recomputes the weight cache from scratch (defensive; used by tests
    /// and debug assertions after complex refinement passes).
    pub fn recompute_weights(&mut self, g: &Graph) {
        self.part_weights.iter_mut().for_each(|w| *w = 0);
        for (v, &p) in self.assignment.iter().enumerate() {
            let base = p as usize * self.ncon;
            for (j, w) in g.vwgt(v as u32).iter().enumerate() {
                self.part_weights[base + j] += w;
            }
        }
    }

    /// Verifies the cached part weights against a fresh recomputation.
    pub fn check_weights(&self, g: &Graph) -> bool {
        let mut fresh = self.clone();
        fresh.recompute_weights(g);
        fresh.part_weights == self.part_weights
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn path(n: usize, ncon: usize) -> Graph {
        let mut b = GraphBuilder::new(n, ncon);
        for v in 0..n as u32 {
            let w: Vec<i64> = (0..ncon).map(|j| if j == 0 { 1 } else { (v % 2) as i64 }).collect();
            b.set_vwgt(v, &w);
        }
        for v in 0..n as u32 - 1 {
            b.add_edge(v, v + 1, 1);
        }
        b.build()
    }

    #[test]
    fn weights_cached_correctly() {
        let g = path(6, 2);
        let p = Partition::from_assignment(&g, 2, vec![0, 0, 0, 1, 1, 1]);
        assert_eq!(p.part_weight(0, 0), 3);
        assert_eq!(p.part_weight(1, 0), 3);
        assert_eq!(p.part_weight(0, 1), 1); // vertex 1 is odd
        assert_eq!(p.part_weight(1, 1), 2); // vertices 3, 5
        assert!(p.check_weights(&g));
    }

    #[test]
    fn move_vertex_updates_cache() {
        let g = path(4, 1);
        let mut p = Partition::from_assignment(&g, 2, vec![0, 0, 1, 1]);
        p.move_vertex(&g, 1, 1);
        assert_eq!(p.part(1), 1);
        assert_eq!(p.part_weight(0, 0), 1);
        assert_eq!(p.part_weight(1, 0), 3);
        assert!(p.check_weights(&g));
        // no-op move
        p.move_vertex(&g, 1, 1);
        assert!(p.check_weights(&g));
    }

    #[test]
    fn imbalance_matches_definition() {
        let g = path(4, 1);
        let p = Partition::from_assignment(&g, 2, vec![0, 0, 0, 1]);
        // max part weight 3, avg 2 -> imbalance 1.5
        assert!((p.imbalance(0) - 1.5).abs() < 1e-12);
        assert!(!p.is_balanced(0.4));
        assert!(p.is_balanced(0.5));
    }

    #[test]
    fn zero_total_constraint_is_balanced() {
        let mut b = GraphBuilder::new(3, 2);
        for v in 0..3u32 {
            b.set_vwgt(v, &[1, 0]);
        }
        let g = b.build();
        let p = Partition::from_assignment(&g, 3, vec![0, 1, 2]);
        assert_eq!(p.imbalance(1), 1.0);
        assert!(p.is_balanced(0.05));
    }

    #[test]
    fn part_size_counts() {
        let g = path(5, 1);
        let p = Partition::from_assignment(&g, 3, vec![0, 1, 1, 2, 2]);
        assert_eq!(p.part_size(0), 1);
        assert_eq!(p.part_size(1), 2);
        assert_eq!(p.part_size(2), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_part_id_panics() {
        let g = path(2, 1);
        let _ = Partition::from_assignment(&g, 2, vec![0, 5]);
    }
}
