//! Connected components.
//!
//! Diagnostics for partition quality: a subdomain that falls apart into
//! several components costs extra communication and defeats geometric
//! descriptors, and the DT-friendly correction can in principle create
//! such fragments (a leaf region reassigned to a part it does not touch).
//! The experiment harness uses these helpers to report fragment counts.

use crate::csr::Graph;

/// Labels each vertex with its connected-component id (`0..num_components`,
/// in order of first discovery) and returns the label vector plus the
/// component count.
pub fn connected_components(g: &Graph) -> (Vec<u32>, usize) {
    let nv = g.nv();
    let mut label = vec![u32::MAX; nv];
    let mut next = 0u32;
    let mut stack: Vec<u32> = Vec::new();
    for start in 0..nv as u32 {
        if label[start as usize] != u32::MAX {
            continue;
        }
        label[start as usize] = next;
        stack.push(start);
        while let Some(v) = stack.pop() {
            for &u in g.adj(v) {
                if label[u as usize] == u32::MAX {
                    label[u as usize] = next;
                    stack.push(u);
                }
            }
        }
        next += 1;
    }
    (label, next as usize)
}

/// For a `k`-way assignment, the number of connected fragments of each
/// part (1 = the part is connected; 0 = the part is empty).
pub fn part_fragments(g: &Graph, assignment: &[u32], k: usize) -> Vec<usize> {
    assert_eq!(assignment.len(), g.nv());
    let nv = g.nv();
    let mut seen = vec![false; nv];
    let mut fragments = vec![0usize; k];
    let mut stack: Vec<u32> = Vec::new();
    for start in 0..nv as u32 {
        if seen[start as usize] {
            continue;
        }
        let part = assignment[start as usize];
        fragments[part as usize] += 1;
        seen[start as usize] = true;
        stack.push(start);
        while let Some(v) = stack.pop() {
            for &u in g.adj(v) {
                if !seen[u as usize] && assignment[u as usize] == part {
                    seen[u as usize] = true;
                    stack.push(u);
                }
            }
        }
    }
    fragments
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn two_paths() -> Graph {
        // 0-1-2   3-4
        let mut b = GraphBuilder::new(5, 1);
        for v in 0..5u32 {
            b.set_vwgt(v, &[1]);
        }
        b.add_edge(0, 1, 1).add_edge(1, 2, 1).add_edge(3, 4, 1);
        b.build()
    }

    #[test]
    fn finds_two_components() {
        let g = two_paths();
        let (label, n) = connected_components(&g);
        assert_eq!(n, 2);
        assert_eq!(label[0], label[1]);
        assert_eq!(label[1], label[2]);
        assert_eq!(label[3], label[4]);
        assert_ne!(label[0], label[3]);
    }

    #[test]
    fn connected_graph_is_one_component() {
        let mut b = GraphBuilder::new(4, 1);
        for v in 0..4u32 {
            b.set_vwgt(v, &[1]);
        }
        for v in 0..3u32 {
            b.add_edge(v, v + 1, 1);
        }
        let (label, n) = connected_components(&b.build());
        assert_eq!(n, 1);
        assert!(label.iter().all(|&l| l == 0));
    }

    #[test]
    fn isolated_vertices_are_singletons() {
        let g = Graph::edgeless(3, 1);
        let (_, n) = connected_components(&g);
        assert_eq!(n, 3);
    }

    #[test]
    fn part_fragments_counts_pieces() {
        // Path 0-1-2-3-4-5 with assignment 0,1,0,0,1,1: part 0 has
        // fragments {0} and {2,3}; part 1 has {1} and {4,5}.
        let mut b = GraphBuilder::new(6, 1);
        for v in 0..6u32 {
            b.set_vwgt(v, &[1]);
        }
        for v in 0..5u32 {
            b.add_edge(v, v + 1, 1);
        }
        let g = b.build();
        let frags = part_fragments(&g, &[0, 1, 0, 0, 1, 1], 2);
        assert_eq!(frags, vec![2, 2]);
        // Contiguous halves: one fragment each.
        let frags = part_fragments(&g, &[0, 0, 0, 1, 1, 1], 2);
        assert_eq!(frags, vec![1, 1]);
    }

    #[test]
    fn empty_parts_report_zero_fragments() {
        let g = two_paths();
        let frags = part_fragments(&g, &[0, 0, 0, 0, 0], 3);
        assert_eq!(frags, vec![2, 0, 0]);
    }
}
