//! Compressed-sparse-row graph with multi-constraint vertex weights.

use serde::{Deserialize, Serialize};

/// An undirected graph in CSR form.
///
/// * Every undirected edge `{u, v}` is stored twice (once in each adjacency
///   list) with the same weight — the METIS storage convention.
/// * Every vertex `v` carries `ncon` weights, stored flattened in `vwgt`
///   at `v * ncon .. (v + 1) * ncon`. For the paper's contact/impact model,
///   `ncon = 2`: component 0 is the finite-element work of the node and
///   component 1 is its contact-search work (zero for non-contact nodes).
/// * Vertex ids are `u32` (meshes of interest have far fewer than 2³²
///   nodes); offsets are `usize`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Graph {
    ncon: usize,
    xadj: Vec<usize>,
    adjncy: Vec<u32>,
    adjwgt: Vec<i64>,
    vwgt: Vec<i64>,
}

impl Graph {
    /// Assembles a graph from raw CSR arrays.
    ///
    /// # Panics
    /// Panics if the arrays are inconsistent (see [`Graph::validate`] for
    /// the checked invariants).
    pub fn from_csr(
        ncon: usize,
        xadj: Vec<usize>,
        adjncy: Vec<u32>,
        adjwgt: Vec<i64>,
        vwgt: Vec<i64>,
    ) -> Self {
        let g = Self { ncon, xadj, adjncy, adjwgt, vwgt };
        g.validate().expect("invalid CSR graph");
        g
    }

    /// [`Graph::from_csr`] without the O(E·deg) validation pass — for hot
    /// construction sites (contraction, subgraph extraction) whose outputs
    /// are correct by construction. Invariants are still checked in debug
    /// builds.
    pub fn from_csr_unchecked(
        ncon: usize,
        xadj: Vec<usize>,
        adjncy: Vec<u32>,
        adjwgt: Vec<i64>,
        vwgt: Vec<i64>,
    ) -> Self {
        let g = Self { ncon, xadj, adjncy, adjwgt, vwgt };
        if cfg!(debug_assertions) {
            g.validate().expect("invalid CSR graph");
        }
        g
    }

    /// A graph with `nv` vertices, no edges, and all weights set to one.
    pub fn edgeless(nv: usize, ncon: usize) -> Self {
        Self {
            ncon,
            xadj: vec![0; nv + 1],
            adjncy: Vec::new(),
            adjwgt: Vec::new(),
            vwgt: vec![1; nv * ncon],
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn nv(&self) -> usize {
        self.xadj.len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn ne(&self) -> usize {
        self.adjncy.len() / 2
    }

    /// Number of vertex-weight constraints.
    #[inline]
    pub fn ncon(&self) -> usize {
        self.ncon
    }

    /// Degree of vertex `v`.
    #[inline]
    pub fn degree(&self, v: u32) -> usize {
        self.xadj[v as usize + 1] - self.xadj[v as usize]
    }

    /// Iterates over `(neighbor, edge_weight)` pairs of `v`.
    #[inline]
    pub fn neighbors(&self, v: u32) -> impl Iterator<Item = (u32, i64)> + '_ {
        let lo = self.xadj[v as usize];
        let hi = self.xadj[v as usize + 1];
        self.adjncy[lo..hi].iter().copied().zip(self.adjwgt[lo..hi].iter().copied())
    }

    /// The adjacency slice of `v` (neighbor ids only).
    #[inline]
    pub fn adj(&self, v: u32) -> &[u32] {
        &self.adjncy[self.xadj[v as usize]..self.xadj[v as usize + 1]]
    }

    /// The weight vector of vertex `v` (`ncon` entries).
    #[inline]
    pub fn vwgt(&self, v: u32) -> &[i64] {
        let base = v as usize * self.ncon;
        &self.vwgt[base..base + self.ncon]
    }

    /// Mutable access to the weight vector of vertex `v`.
    #[inline]
    pub fn vwgt_mut(&mut self, v: u32) -> &mut [i64] {
        let base = v as usize * self.ncon;
        &mut self.vwgt[base..base + self.ncon]
    }

    /// Sum of all vertex weights, one total per constraint.
    pub fn total_vwgt(&self) -> Vec<i64> {
        let mut totals = vec![0i64; self.ncon];
        for chunk in self.vwgt.chunks_exact(self.ncon) {
            for (t, w) in totals.iter_mut().zip(chunk) {
                *t += w;
            }
        }
        totals
    }

    /// Sum of the weights of edges incident to `v`.
    pub fn weighted_degree(&self, v: u32) -> i64 {
        let lo = self.xadj[v as usize];
        let hi = self.xadj[v as usize + 1];
        self.adjwgt[lo..hi].iter().sum()
    }

    /// Raw CSR offsets (one per vertex, plus the terminal offset).
    #[inline]
    pub fn xadj(&self) -> &[usize] {
        &self.xadj
    }

    /// Raw adjacency array.
    #[inline]
    pub fn adjncy(&self) -> &[u32] {
        &self.adjncy
    }

    /// Raw edge-weight array (parallel to [`Graph::adjncy`]).
    #[inline]
    pub fn adjwgt(&self) -> &[i64] {
        &self.adjwgt
    }

    /// Raw flattened vertex weights.
    #[inline]
    pub fn vwgt_raw(&self) -> &[i64] {
        &self.vwgt
    }

    /// Checks the CSR invariants:
    ///
    /// * offsets are monotone and end at `adjncy.len()`,
    /// * `adjwgt` is parallel to `adjncy`,
    /// * `vwgt` has `nv * ncon` entries,
    /// * neighbor ids are in range and there are no self-loops,
    /// * the adjacency structure is symmetric with matching weights.
    pub fn validate(&self) -> Result<(), String> {
        if self.ncon == 0 {
            return Err("ncon must be >= 1".into());
        }
        if self.xadj.is_empty() {
            return Err("xadj must have at least one entry".into());
        }
        let nv = self.nv();
        if *self.xadj.last().unwrap() != self.adjncy.len() {
            return Err("xadj must end at adjncy.len()".into());
        }
        if self.adjwgt.len() != self.adjncy.len() {
            return Err("adjwgt must parallel adjncy".into());
        }
        if self.vwgt.len() != nv * self.ncon {
            return Err(format!(
                "vwgt has {} entries, expected nv * ncon = {}",
                self.vwgt.len(),
                nv * self.ncon
            ));
        }
        for v in 0..nv {
            if self.xadj[v] > self.xadj[v + 1] {
                return Err(format!("xadj not monotone at vertex {v}"));
            }
        }
        // Symmetry: every (u -> v, w) slot must have a matching (v -> u, w).
        for u in 0..nv as u32 {
            for (v, w) in self.neighbors(u) {
                if v as usize >= nv {
                    return Err(format!("neighbor {v} of {u} out of range"));
                }
                if v == u {
                    return Err(format!("self-loop at vertex {u}"));
                }
                let found = self.neighbors(v).any(|(b, bw)| b == u && bw == w);
                if !found {
                    return Err(format!("edge {u} -> {v} (w={w}) has no symmetric twin"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Path graph 0 - 1 - 2 with unit weights, ncon = 2.
    fn path3() -> Graph {
        Graph::from_csr(
            2,
            vec![0, 1, 3, 4],
            vec![1, 0, 2, 1],
            vec![1, 1, 1, 1],
            vec![1, 0, 1, 1, 1, 0],
        )
    }

    #[test]
    fn basic_accessors() {
        let g = path3();
        assert_eq!(g.nv(), 3);
        assert_eq!(g.ne(), 2);
        assert_eq!(g.ncon(), 2);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.vwgt(0), &[1, 0]);
        assert_eq!(g.vwgt(1), &[1, 1]);
        assert_eq!(g.total_vwgt(), vec![3, 1]);
        assert_eq!(g.weighted_degree(1), 2);
        let n: Vec<_> = g.neighbors(1).collect();
        assert_eq!(n, vec![(0, 1), (2, 1)]);
    }

    #[test]
    fn edgeless_graph() {
        let g = Graph::edgeless(5, 1);
        assert_eq!(g.nv(), 5);
        assert_eq!(g.ne(), 0);
        assert_eq!(g.total_vwgt(), vec![5]);
        g.validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "invalid CSR graph")]
    fn asymmetric_graph_rejected() {
        // 0 -> 1 exists but 1 -> 0 does not.
        let _ = Graph::from_csr(1, vec![0, 1, 1], vec![1], vec![1], vec![1, 1]);
    }

    #[test]
    #[should_panic(expected = "invalid CSR graph")]
    fn self_loop_rejected() {
        let _ = Graph::from_csr(1, vec![0, 1], vec![0], vec![1], vec![1]);
    }

    #[test]
    #[should_panic(expected = "invalid CSR graph")]
    fn weight_mismatch_rejected() {
        // Symmetric structure but mismatched weights.
        let _ = Graph::from_csr(1, vec![0, 1, 2], vec![1, 0], vec![1, 2], vec![1, 1]);
    }

    #[test]
    fn vwgt_mut_updates_totals() {
        let mut g = path3();
        g.vwgt_mut(0)[1] = 5;
        assert_eq!(g.total_vwgt(), vec![3, 6]);
    }
}
