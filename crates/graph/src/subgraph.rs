//! Induced subgraph extraction.
//!
//! Multilevel *recursive bisection* partitions a graph into two sides and
//! recurses independently on each side's induced subgraph; this module
//! provides that extraction together with the index mapping back to the
//! parent graph.

use crate::csr::Graph;

/// An induced subgraph plus the mapping from its vertex ids to the parent
/// graph's vertex ids.
#[derive(Debug, Clone)]
pub struct Subgraph {
    /// The induced subgraph.
    pub graph: Graph,
    /// `to_parent[new_id] = old_id`.
    pub to_parent: Vec<u32>,
}

/// Extracts the subgraph induced by the vertices for which `select` is true.
///
/// Edges with exactly one selected endpoint are dropped (they are the cut
/// edges of the enclosing bisection and are accounted for at that level).
pub fn induced_subgraph(g: &Graph, select: &[bool]) -> Subgraph {
    assert_eq!(select.len(), g.nv(), "one flag per vertex");
    let ncon = g.ncon();
    let mut to_parent = Vec::new();
    let mut to_new = vec![u32::MAX; g.nv()];
    for v in 0..g.nv() {
        if select[v] {
            to_new[v] = to_parent.len() as u32;
            to_parent.push(v as u32);
        }
    }
    let nv = to_parent.len();
    let mut xadj = Vec::with_capacity(nv + 1);
    xadj.push(0usize);
    let mut adjncy = Vec::new();
    let mut adjwgt = Vec::new();
    let mut vwgt = Vec::with_capacity(nv * ncon);
    for &old in &to_parent {
        vwgt.extend_from_slice(g.vwgt(old));
        for (u, w) in g.neighbors(old) {
            let nu = to_new[u as usize];
            if nu != u32::MAX {
                adjncy.push(nu);
                adjwgt.push(w);
            }
        }
        xadj.push(adjncy.len());
    }
    Subgraph { graph: Graph::from_csr(ncon, xadj, adjncy, adjwgt, vwgt), to_parent }
}

/// Convenience wrapper: the subgraph induced by vertices whose assignment
/// equals `part`.
pub fn subgraph_of_part(g: &Graph, assignment: &[u32], part: u32) -> Subgraph {
    let select: Vec<bool> = assignment.iter().map(|&p| p == part).collect();
    induced_subgraph(g, &select)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    /// Path 0 - 1 - 2 - 3 - 4 with edge weights 1..4.
    fn path5() -> Graph {
        let mut b = GraphBuilder::new(5, 1);
        for v in 0..5u32 {
            b.set_vwgt(v, &[v as i64 + 1]);
        }
        for v in 0..4u32 {
            b.add_edge(v, v + 1, v as i64 + 1);
        }
        b.build()
    }

    #[test]
    fn extracts_prefix() {
        let g = path5();
        let sg = induced_subgraph(&g, &[true, true, true, false, false]);
        assert_eq!(sg.graph.nv(), 3);
        assert_eq!(sg.graph.ne(), 2);
        assert_eq!(sg.to_parent, vec![0, 1, 2]);
        assert_eq!(sg.graph.vwgt(2), &[3]);
        // Cut edge 2-3 dropped.
        assert_eq!(sg.graph.degree(2), 1);
    }

    #[test]
    fn extracts_disconnected_selection() {
        let g = path5();
        let sg = induced_subgraph(&g, &[true, false, true, false, true]);
        assert_eq!(sg.graph.nv(), 3);
        assert_eq!(sg.graph.ne(), 0);
        assert_eq!(sg.to_parent, vec![0, 2, 4]);
    }

    #[test]
    fn subgraph_of_part_selects_by_assignment() {
        let g = path5();
        let asg = vec![0, 0, 1, 1, 1];
        let sg = subgraph_of_part(&g, &asg, 1);
        assert_eq!(sg.to_parent, vec![2, 3, 4]);
        assert_eq!(sg.graph.ne(), 2);
        // Edge weights preserved: 2-3 weight 3, 3-4 weight 4.
        let w: Vec<_> = sg.graph.neighbors(1).collect();
        assert_eq!(w.len(), 2);
        assert!(w.contains(&(0, 3)));
        assert!(w.contains(&(2, 4)));
    }

    #[test]
    fn empty_selection_gives_empty_graph() {
        let g = path5();
        let sg = induced_subgraph(&g, &[false; 5]);
        assert_eq!(sg.graph.nv(), 0);
        assert_eq!(sg.graph.ne(), 0);
    }

    #[test]
    fn full_selection_is_identity() {
        let g = path5();
        let sg = induced_subgraph(&g, &[true; 5]);
        assert_eq!(sg.graph.nv(), g.nv());
        assert_eq!(sg.graph.ne(), g.ne());
        assert_eq!(sg.graph.total_vwgt(), g.total_vwgt());
    }
}
