//! CSR graphs with multi-constraint vertex weights.
//!
//! This crate is the graph substrate for the multilevel partitioner and for
//! the paper's evaluation metrics:
//!
//! * [`Graph`] — a compressed-sparse-row undirected graph whose vertices
//!   carry a *vector* of `ncon` weights (the multi-constraint formulation of
//!   Karypis & Kumar) and whose edges carry scalar weights,
//! * [`builder::GraphBuilder`] — incremental construction with duplicate-edge
//!   merging,
//! * [`Partition`] — a `k`-way assignment with cached per-part weight sums
//!   and per-constraint load-imbalance queries,
//! * [`metrics`] — edge-cut and Hendrickson's *total communication volume*
//!   (the paper's FEComm metric),
//! * [`contract()`] / [`subgraph`] — the coarsening and recursive-bisection
//!   primitives (vertex-group contraction, induced subgraphs),
//! * [`components`] — connected components and per-part fragment counts
//!   (subdomain-connectivity diagnostics).

pub mod builder;
pub mod components;
pub mod contract;
pub mod csr;
pub mod metrics;
pub mod partition;
pub mod subgraph;

pub use builder::GraphBuilder;
pub use components::{connected_components, part_fragments};
pub use contract::{contract, contract_with, ContractWorkspace};
pub use csr::Graph;
pub use metrics::{boundary_vertices, edge_cut, total_comm_volume};
pub use partition::Partition;
pub use subgraph::{induced_subgraph, Subgraph};
