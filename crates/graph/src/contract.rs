//! Vertex-group contraction.
//!
//! Contraction serves two roles in the system:
//!
//! * the coarsening phase of the multilevel partitioner collapses matched
//!   vertex pairs,
//! * the DT-friendly correction step of the paper (§4.2) collapses all the
//!   vertices of each decision-tree leaf into a single vertex of the
//!   region graph `G'`, so that k-way refinement moves whole axis-parallel
//!   regions between parts.

use crate::csr::Graph;

/// Contracts `g` according to `map`, where `map[v]` is the coarse vertex id
/// of fine vertex `v` and coarse ids densely cover `0..cnv`.
///
/// Vertex-weight vectors of merged vertices are summed per constraint;
/// parallel edges between the same coarse pair are merged by summing their
/// weights; edges internal to a group disappear.
///
/// # Panics
/// Panics if `map.len() != g.nv()` or any entry is `>= cnv`.
pub fn contract(g: &Graph, map: &[u32], cnv: usize) -> Graph {
    assert_eq!(map.len(), g.nv(), "one coarse id per fine vertex");
    let ncon = g.ncon();

    // Coarse vertex weights.
    let mut cvwgt = vec![0i64; cnv * ncon];
    for (v, &c) in map.iter().enumerate() {
        let c = c as usize;
        assert!(c < cnv, "coarse id {c} out of range");
        let base = c * ncon;
        for (j, w) in g.vwgt(v as u32).iter().enumerate() {
            cvwgt[base + j] += w;
        }
    }

    // Group fine vertices by coarse id (counting sort) so each coarse
    // vertex's adjacency is assembled in one contiguous pass.
    let mut counts = vec![0usize; cnv + 1];
    for &c in map {
        counts[c as usize + 1] += 1;
    }
    for c in 0..cnv {
        counts[c + 1] += counts[c];
    }
    let mut members = vec![0u32; g.nv()];
    let mut cursor = counts[..cnv].to_vec();
    for (v, &c) in map.iter().enumerate() {
        members[cursor[c as usize]] = v as u32;
        cursor[c as usize] += 1;
    }

    // Scatter-accumulate each coarse vertex's neighbor weights. `slot[c]`
    // remembers where neighbor `c` sits in the current adjacency segment;
    // `stamp` avoids clearing the array between coarse vertices.
    let mut slot = vec![0usize; cnv];
    let mut stamp = vec![u32::MAX; cnv];
    let mut cxadj = Vec::with_capacity(cnv + 1);
    let mut cadjncy: Vec<u32> = Vec::with_capacity(g.adjncy().len());
    let mut cadjwgt: Vec<i64> = Vec::with_capacity(g.adjncy().len());
    cxadj.push(0usize);
    for c in 0..cnv {
        let seg_start = cadjncy.len();
        for &v in &members[counts[c]..counts[c + 1]] {
            for (u, w) in g.neighbors(v) {
                let cu = map[u as usize] as usize;
                if cu == c {
                    continue; // internal edge vanishes
                }
                if stamp[cu] == c as u32 {
                    cadjwgt[slot[cu]] += w;
                } else {
                    stamp[cu] = c as u32;
                    slot[cu] = cadjncy.len();
                    cadjncy.push(cu as u32);
                    cadjwgt.push(w);
                }
            }
        }
        let _ = seg_start;
        cxadj.push(cadjncy.len());
    }
    Graph::from_csr(ncon, cxadj, cadjncy, cadjwgt, cvwgt)
}

/// Projects a coarse-graph part assignment back onto the fine graph:
/// `fine[v] = coarse[map[v]]`.
pub fn project_assignment(map: &[u32], coarse: &[u32]) -> Vec<u32> {
    map.iter().map(|&c| coarse[c as usize]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::metrics::edge_cut;

    /// Square 0-1-2-3-0 with a diagonal 0-2.
    fn square_with_diag() -> Graph {
        let mut b = GraphBuilder::new(4, 2);
        for v in 0..4u32 {
            b.set_vwgt(v, &[1, v as i64]);
        }
        for (u, v, w) in [(0, 1, 1), (1, 2, 2), (2, 3, 3), (3, 0, 4), (0, 2, 5)] {
            b.add_edge(u, v, w);
        }
        b.build()
    }

    #[test]
    fn contract_pairs() {
        let g = square_with_diag();
        // Merge {0,1} -> 0 and {2,3} -> 1.
        let cg = contract(&g, &[0, 0, 1, 1], 2);
        assert_eq!(cg.nv(), 2);
        assert_eq!(cg.ne(), 1);
        // Cross edges: 1-2 (2), 3-0 (4), 0-2 (5) -> merged weight 11.
        assert_eq!(cg.neighbors(0).next(), Some((1, 11)));
        // Vertex weights summed per constraint.
        assert_eq!(cg.vwgt(0), &[2, 1]);
        assert_eq!(cg.vwgt(1), &[2, 5]);
    }

    #[test]
    fn contraction_preserves_cut_of_projected_partition() {
        let g = square_with_diag();
        let map = vec![0, 0, 1, 1];
        let cg = contract(&g, &map, 2);
        let coarse_asg = vec![0u32, 1u32];
        let fine_asg = project_assignment(&map, &coarse_asg);
        assert_eq!(edge_cut(&cg, &coarse_asg), edge_cut(&g, &fine_asg));
    }

    #[test]
    fn identity_contraction_is_isomorphic() {
        let g = square_with_diag();
        let map: Vec<u32> = (0..4).collect();
        let cg = contract(&g, &map, 4);
        assert_eq!(cg.nv(), g.nv());
        assert_eq!(cg.ne(), g.ne());
        for v in 0..4u32 {
            assert_eq!(cg.vwgt(v), g.vwgt(v));
            let mut a: Vec<_> = cg.neighbors(v).collect();
            let mut b: Vec<_> = g.neighbors(v).collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn contract_to_single_vertex() {
        let g = square_with_diag();
        let cg = contract(&g, &[0, 0, 0, 0], 1);
        assert_eq!(cg.nv(), 1);
        assert_eq!(cg.ne(), 0);
        assert_eq!(cg.vwgt(0), &[4, 6]);
    }

    #[test]
    fn total_vwgt_invariant_under_contraction() {
        let g = square_with_diag();
        let cg = contract(&g, &[1, 0, 1, 0], 2);
        assert_eq!(cg.total_vwgt(), g.total_vwgt());
    }
}
