//! Vertex-group contraction.
//!
//! Contraction serves two roles in the system:
//!
//! * the coarsening phase of the multilevel partitioner collapses matched
//!   vertex pairs,
//! * the DT-friendly correction step of the paper (§4.2) collapses all the
//!   vertices of each decision-tree leaf into a single vertex of the
//!   region graph `G'`, so that k-way refinement moves whole axis-parallel
//!   regions between parts.
//!
//! The partitioner's coarsening loop calls [`contract_with`] once per level,
//! threading a [`ContractWorkspace`] through so the scratch arrays (group
//! counts, member lists, per-worker stamp/slot tables) are allocated once
//! and reused at every level. Above the caller's parallel threshold the
//! assembly runs as a two-pass (count, then fill) CSR construction over
//! chunks of coarse vertices on the rayon pool; both paths emit
//! **bit-identical** graphs, so the choice is purely a performance knob and
//! never affects partitioning results.

use crate::csr::Graph;
use rayon::prelude::*;

/// Per-worker scatter-accumulate scratch: `stamp[c]` records the coarse
/// vertex currently owning slot `slot[c]` so the arrays never need clearing
/// between coarse vertices (only between passes).
#[derive(Debug, Default)]
struct Scratch {
    stamp: Vec<u32>,
    slot: Vec<usize>,
}

impl Scratch {
    fn reset(&mut self, cnv: usize) {
        self.stamp.clear();
        self.stamp.resize(cnv, u32::MAX);
        self.slot.clear();
        self.slot.resize(cnv, 0);
    }
}

/// Reusable scratch buffers for [`contract_with`].
///
/// Holding one of these across a coarsening hierarchy makes the steady-state
/// level loop allocation-free (only the output graph's own CSR arrays are
/// freshly allocated, since the caller keeps them).
#[derive(Debug, Default)]
pub struct ContractWorkspace {
    /// Prefix sums of group sizes: group `c` occupies
    /// `members[counts[c]..counts[c + 1]]`.
    counts: Vec<usize>,
    /// Fine vertices sorted (stably) by coarse id.
    members: Vec<u32>,
    /// Counting-sort write cursors.
    cursor: Vec<usize>,
    /// Coarse adjacency sizes for the two-pass parallel assembly.
    degs: Vec<usize>,
    /// Per-worker stamp/slot tables (one per parallel chunk).
    scratch: Vec<Scratch>,
}

impl ContractWorkspace {
    /// A workspace with empty buffers (they grow on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Counting-sorts fine vertices by coarse id into `counts`/`members`.
    fn group(&mut self, map: &[u32], cnv: usize) {
        self.counts.clear();
        self.counts.resize(cnv + 1, 0);
        for &c in map {
            let c = c as usize;
            assert!(c < cnv, "coarse id {c} out of range");
            self.counts[c + 1] += 1;
        }
        for c in 0..cnv {
            self.counts[c + 1] += self.counts[c];
        }
        self.members.clear();
        self.members.resize(map.len(), 0);
        self.cursor.clear();
        self.cursor.extend_from_slice(&self.counts[..cnv]);
        for (v, &c) in map.iter().enumerate() {
            let cur = &mut self.cursor[c as usize];
            self.members[*cur] = v as u32;
            *cur += 1;
        }
    }
}

/// Contracts `g` according to `map`, where `map[v]` is the coarse vertex id
/// of fine vertex `v` and coarse ids densely cover `0..cnv`.
///
/// Vertex-weight vectors of merged vertices are summed per constraint;
/// parallel edges between the same coarse pair are merged by summing their
/// weights; edges internal to a group disappear.
///
/// Convenience wrapper over [`contract_with`] with a throwaway workspace and
/// the sequential assembly path.
///
/// # Panics
/// Panics if `map.len() != g.nv()` or any entry is `>= cnv`.
pub fn contract(g: &Graph, map: &[u32], cnv: usize) -> Graph {
    contract_with(g, map, cnv, false, &mut ContractWorkspace::new())
}

/// [`contract`], with explicit control of parallelism and scratch reuse.
///
/// When `parallel` is true the per-coarse-vertex adjacency assembly and the
/// coarse vertex-weight accumulation run on the rayon pool (two-pass CSR:
/// count degrees, prefix-sum, then fill disjoint output segments). The
/// output is bit-identical to the sequential path for any thread count:
/// every coarse vertex's adjacency depends only on the (deterministic)
/// member order and CSR neighbor order, never on scheduling.
pub fn contract_with(
    g: &Graph,
    map: &[u32],
    cnv: usize,
    parallel: bool,
    ws: &mut ContractWorkspace,
) -> Graph {
    assert_eq!(map.len(), g.nv(), "one coarse id per fine vertex");
    let ncon = g.ncon();
    ws.group(map, cnv);

    let ContractWorkspace { counts, members, degs, scratch, .. } = ws;
    let counts: &[usize] = counts;
    let members: &[u32] = members;

    // Coarse vertex weights: each coarse row sums its members' fine rows.
    let mut cvwgt = vec![0i64; cnv * ncon];
    if parallel {
        cvwgt.par_chunks_mut(ncon).enumerate().for_each(|(c, row)| {
            for &v in &members[counts[c]..counts[c + 1]] {
                for (acc, w) in row.iter_mut().zip(g.vwgt(v)) {
                    *acc += w;
                }
            }
        });
    } else {
        for (c, row) in cvwgt.chunks_exact_mut(ncon).enumerate() {
            for &v in &members[counts[c]..counts[c + 1]] {
                for (acc, w) in row.iter_mut().zip(g.vwgt(v)) {
                    *acc += w;
                }
            }
        }
    }

    if !parallel {
        // Single-pass sequential assembly: scatter-accumulate each coarse
        // vertex's neighbor weights, growing the output arrays in place.
        if scratch.is_empty() {
            scratch.push(Scratch::default());
        }
        let sc = &mut scratch[0];
        sc.reset(cnv);
        let mut cxadj = Vec::with_capacity(cnv + 1);
        let mut sink = GrowSink {
            adjncy: Vec::with_capacity(g.adjncy().len()),
            adjwgt: Vec::with_capacity(g.adjncy().len()),
        };
        cxadj.push(0usize);
        for c in 0..cnv {
            assemble(g, map, &members[counts[c]..counts[c + 1]], c, sc, &mut sink);
            cxadj.push(sink.adjncy.len());
        }
        return Graph::from_csr_unchecked(ncon, cxadj, sink.adjncy, sink.adjwgt, cvwgt);
    }

    // Two-pass parallel assembly over chunks of coarse vertices. Chunk size
    // is bounded below so tiny graphs don't shatter into per-vertex tasks.
    let chunk = chunk_size(cnv);
    let nchunks = cnv.div_ceil(chunk).max(1);
    if scratch.len() < nchunks {
        scratch.resize_with(nchunks, Scratch::default);
    }

    // Pass A: per-coarse-vertex degrees.
    degs.clear();
    degs.resize(cnv, 0);
    degs.par_chunks_mut(chunk).zip(scratch.par_iter_mut()).enumerate().for_each(
        |(ci, (dchunk, sc))| {
            sc.reset(cnv);
            let base = ci * chunk;
            for (i, d) in dchunk.iter_mut().enumerate() {
                let c = base + i;
                let mut deg = 0usize;
                for &v in &members[counts[c]..counts[c + 1]] {
                    for &u in g.adj(v) {
                        let cu = map[u as usize] as usize;
                        if cu != c && sc.stamp[cu] != c as u32 {
                            sc.stamp[cu] = c as u32;
                            deg += 1;
                        }
                    }
                }
                *d = deg;
            }
        },
    );

    // Prefix-sum into offsets.
    let mut cxadj = Vec::with_capacity(cnv + 1);
    cxadj.push(0usize);
    let mut total = 0usize;
    for &d in degs.iter() {
        total += d;
        cxadj.push(total);
    }

    // Pass B: fill disjoint output segments, one slice pair per chunk.
    let mut cadjncy = vec![0u32; total];
    let mut cadjwgt = vec![0i64; total];
    let mut seg_n: &mut [u32] = &mut cadjncy;
    let mut seg_w: &mut [i64] = &mut cadjwgt;
    let mut segments: Vec<(usize, &mut [u32], &mut [i64])> = Vec::with_capacity(nchunks);
    let mut cut_at = 0usize;
    for ci in 0..nchunks {
        let lo_c = ci * chunk;
        let hi_c = (lo_c + chunk).min(cnv);
        let len = cxadj[hi_c] - cut_at;
        let (n, rest_n) = std::mem::take(&mut seg_n).split_at_mut(len);
        let (w, rest_w) = std::mem::take(&mut seg_w).split_at_mut(len);
        segments.push((lo_c, n, w));
        seg_n = rest_n;
        seg_w = rest_w;
        cut_at += len;
    }
    let cxadj_ref: &[usize] = &cxadj;
    segments.par_iter_mut().zip(scratch.par_iter_mut()).for_each(|((lo_c, seg_n, seg_w), sc)| {
        sc.reset(cnv);
        let lo_c = *lo_c;
        let hi_c = (lo_c + chunk).min(cnv);
        let seg_base = cxadj_ref[lo_c];
        for c in lo_c..hi_c {
            let mut sink = SliceSink { adjncy: seg_n, adjwgt: seg_w, len: cxadj_ref[c] - seg_base };
            assemble(g, map, &members[counts[c]..counts[c + 1]], c, sc, &mut sink);
            debug_assert_eq!(sink.len, cxadj_ref[c + 1] - seg_base);
        }
    });

    Graph::from_csr_unchecked(ncon, cxadj, cadjncy, cadjwgt, cvwgt)
}

/// Where [`assemble`] writes one coarse vertex's merged adjacency.
trait AdjSink {
    /// Records a first-seen coarse neighbor and returns its slot.
    fn push(&mut self, cu: usize, w: i64) -> usize;
    /// Folds a repeated coarse neighbor's weight into its slot.
    fn bump(&mut self, slot: usize, w: i64);
}

/// Growable sink for the sequential single-pass assembly.
struct GrowSink {
    adjncy: Vec<u32>,
    adjwgt: Vec<i64>,
}

impl AdjSink for GrowSink {
    fn push(&mut self, cu: usize, w: i64) -> usize {
        self.adjncy.push(cu as u32);
        self.adjwgt.push(w);
        self.adjncy.len() - 1
    }
    fn bump(&mut self, slot: usize, w: i64) {
        self.adjwgt[slot] += w;
    }
}

/// Fixed-size sink writing into a chunk's pre-sized output segment.
struct SliceSink<'a> {
    adjncy: &'a mut [u32],
    adjwgt: &'a mut [i64],
    len: usize,
}

impl AdjSink for SliceSink<'_> {
    fn push(&mut self, cu: usize, w: i64) -> usize {
        self.adjncy[self.len] = cu as u32;
        self.adjwgt[self.len] = w;
        self.len += 1;
        self.len - 1
    }
    fn bump(&mut self, slot: usize, w: i64) {
        self.adjwgt[slot] += w;
    }
}

/// Shared scatter-accumulate kernel for one coarse vertex `c`: walks the
/// members' fine adjacencies, merging parallel edges into `sink` and
/// dropping internal ones.
#[inline]
fn assemble(
    g: &Graph,
    map: &[u32],
    members: &[u32],
    c: usize,
    sc: &mut Scratch,
    sink: &mut impl AdjSink,
) {
    for &v in members {
        for (u, w) in g.neighbors(v) {
            let cu = map[u as usize] as usize;
            if cu == c {
                continue; // internal edge vanishes
            }
            if sc.stamp[cu] == c as u32 {
                sink.bump(sc.slot[cu], w);
            } else {
                sc.stamp[cu] = c as u32;
                sc.slot[cu] = sink.push(cu, w);
            }
        }
    }
}

/// Parallel chunking grain: small enough to load-balance, large enough that
/// per-chunk stamp resets stay cheap relative to the work.
fn chunk_size(cnv: usize) -> usize {
    let workers = rayon::current_num_threads().max(1);
    (cnv.div_ceil(4 * workers)).max(256).min(cnv.max(1))
}

/// Projects a coarse-graph part assignment back onto the fine graph:
/// `fine[v] = coarse[map[v]]`.
pub fn project_assignment(map: &[u32], coarse: &[u32]) -> Vec<u32> {
    map.iter().map(|&c| coarse[c as usize]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::metrics::edge_cut;

    /// Square 0-1-2-3-0 with a diagonal 0-2.
    fn square_with_diag() -> Graph {
        let mut b = GraphBuilder::new(4, 2);
        for v in 0..4u32 {
            b.set_vwgt(v, &[1, v as i64]);
        }
        for (u, v, w) in [(0, 1, 1), (1, 2, 2), (2, 3, 3), (3, 0, 4), (0, 2, 5)] {
            b.add_edge(u, v, w);
        }
        b.build()
    }

    #[test]
    fn contract_pairs() {
        let g = square_with_diag();
        // Merge {0,1} -> 0 and {2,3} -> 1.
        let cg = contract(&g, &[0, 0, 1, 1], 2);
        assert_eq!(cg.nv(), 2);
        assert_eq!(cg.ne(), 1);
        // Cross edges: 1-2 (2), 3-0 (4), 0-2 (5) -> merged weight 11.
        assert_eq!(cg.neighbors(0).next(), Some((1, 11)));
        // Vertex weights summed per constraint.
        assert_eq!(cg.vwgt(0), &[2, 1]);
        assert_eq!(cg.vwgt(1), &[2, 5]);
    }

    #[test]
    fn contraction_preserves_cut_of_projected_partition() {
        let g = square_with_diag();
        let map = vec![0, 0, 1, 1];
        let cg = contract(&g, &map, 2);
        let coarse_asg = vec![0u32, 1u32];
        let fine_asg = project_assignment(&map, &coarse_asg);
        assert_eq!(edge_cut(&cg, &coarse_asg), edge_cut(&g, &fine_asg));
    }

    #[test]
    fn identity_contraction_is_isomorphic() {
        let g = square_with_diag();
        let map: Vec<u32> = (0..4).collect();
        let cg = contract(&g, &map, 4);
        assert_eq!(cg.nv(), g.nv());
        assert_eq!(cg.ne(), g.ne());
        for v in 0..4u32 {
            assert_eq!(cg.vwgt(v), g.vwgt(v));
            let mut a: Vec<_> = cg.neighbors(v).collect();
            let mut b: Vec<_> = g.neighbors(v).collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn contract_to_single_vertex() {
        let g = square_with_diag();
        let cg = contract(&g, &[0, 0, 0, 0], 1);
        assert_eq!(cg.nv(), 1);
        assert_eq!(cg.ne(), 0);
        assert_eq!(cg.vwgt(0), &[4, 6]);
    }

    #[test]
    fn total_vwgt_invariant_under_contraction() {
        let g = square_with_diag();
        let cg = contract(&g, &[1, 0, 1, 0], 2);
        assert_eq!(cg.total_vwgt(), g.total_vwgt());
    }

    /// Random-ish graph used to compare the two assembly paths.
    fn chorded_path(n: usize) -> Graph {
        let mut b = GraphBuilder::new(n, 2);
        let mut state = 0xD00Fu64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for v in 0..n as u32 {
            b.set_vwgt(v, &[1, (v % 3) as i64]);
        }
        for v in 0..n as u32 - 1 {
            b.add_edge(v, v + 1, 1 + (next() % 5) as i64);
        }
        for _ in 0..2 * n {
            let u = (next() % n as u64) as u32;
            let v = (next() % n as u64) as u32;
            if u != v {
                b.add_edge(u, v, 1 + (next() % 7) as i64);
            }
        }
        b.build()
    }

    #[test]
    fn parallel_and_sequential_paths_are_bit_identical() {
        // cnv = 157 stays below the minimum chunk size (one chunk); cnv = 601
        // forces several chunks so segment splitting and per-chunk scratch
        // resets are exercised too.
        for (n, cnv) in [(997usize, 157usize), (2500, 601)] {
            let g = chorded_path(n);
            // A blocked map with uneven group sizes exercises slot reuse.
            let map: Vec<u32> = (0..g.nv()).map(|v| (v % cnv) as u32).collect();
            let mut ws = ContractWorkspace::new();
            let seq = contract_with(&g, &map, cnv, false, &mut ws);
            let par = contract_with(&g, &map, cnv, true, &mut ws);
            assert_eq!(seq.xadj(), par.xadj());
            assert_eq!(seq.adjncy(), par.adjncy());
            assert_eq!(seq.adjwgt(), par.adjwgt());
            assert_eq!(seq.vwgt_raw(), par.vwgt_raw());
        }
    }

    #[test]
    fn workspace_reuse_across_shrinking_levels() {
        // Reusing one workspace across successively smaller contractions
        // must not leak state between calls (stamps, stale counts).
        let g = chorded_path(400);
        let mut ws = ContractWorkspace::new();
        let map1: Vec<u32> = (0..g.nv()).map(|v| (v / 2) as u32).collect();
        let c1 = contract_with(&g, &map1, g.nv().div_ceil(2), true, &mut ws);
        let map2: Vec<u32> = (0..c1.nv()).map(|v| (v / 2) as u32).collect();
        let c2 = contract_with(&c1, &map2, c1.nv().div_ceil(2), true, &mut ws);
        let fresh = contract(&c1, &map2, c1.nv().div_ceil(2));
        assert_eq!(c2.xadj(), fresh.xadj());
        assert_eq!(c2.adjncy(), fresh.adjncy());
        assert_eq!(c2.adjwgt(), fresh.adjwgt());
        assert_eq!(c2.vwgt_raw(), fresh.vwgt_raw());
        assert_eq!(c2.total_vwgt(), g.total_vwgt());
    }
}
