//! Incremental graph construction.

use crate::csr::Graph;

/// Builds a [`Graph`] from an edge stream, merging duplicate edges by
/// summing their weights and dropping self-loops.
///
/// Construction is two-phase (count, then fill) so the final CSR arrays are
/// allocated exactly once, which matters when building nodal graphs for
/// meshes with hundreds of thousands of nodes every snapshot.
///
/// ```
/// use cip_graph::GraphBuilder;
///
/// // A triangle with two-constraint vertex weights.
/// let mut b = GraphBuilder::new(3, 2);
/// b.set_vwgt(0, &[1, 0]).set_vwgt(1, &[1, 1]).set_vwgt(2, &[1, 0]);
/// b.add_edge(0, 1, 5).add_edge(1, 2, 1).add_edge(2, 0, 1);
/// let g = b.build();
/// assert_eq!(g.nv(), 3);
/// assert_eq!(g.ne(), 3);
/// assert_eq!(g.total_vwgt(), vec![3, 1]);
/// assert_eq!(g.weighted_degree(1), 6);
/// ```
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    nv: usize,
    ncon: usize,
    vwgt: Vec<i64>,
    /// Undirected edges, one entry per logical edge (u < v not required).
    edges: Vec<(u32, u32, i64)>,
}

impl GraphBuilder {
    /// A builder for a graph with `nv` vertices and `ncon` constraints.
    /// All vertex weights start at zero.
    pub fn new(nv: usize, ncon: usize) -> Self {
        assert!(ncon >= 1, "ncon must be >= 1");
        Self { nv, ncon, vwgt: vec![0; nv * ncon], edges: Vec::new() }
    }

    /// Sets the full weight vector of vertex `v`.
    pub fn set_vwgt(&mut self, v: u32, w: &[i64]) -> &mut Self {
        assert_eq!(w.len(), self.ncon);
        let base = v as usize * self.ncon;
        self.vwgt[base..base + self.ncon].copy_from_slice(w);
        self
    }

    /// Sets one component of vertex `v`'s weight vector.
    pub fn set_vwgt_component(&mut self, v: u32, j: usize, w: i64) -> &mut Self {
        self.vwgt[v as usize * self.ncon + j] = w;
        self
    }

    /// Adds an undirected edge `{u, v}` with weight `w`. Self-loops are
    /// ignored; duplicate edges accumulate their weights.
    pub fn add_edge(&mut self, u: u32, v: u32, w: i64) -> &mut Self {
        assert!((u as usize) < self.nv && (v as usize) < self.nv, "edge endpoint out of range");
        if u != v {
            self.edges.push((u, v, w));
        }
        self
    }

    /// Number of edge records added so far (before deduplication).
    pub fn num_edge_records(&self) -> usize {
        self.edges.len()
    }

    /// Finalizes the CSR graph.
    pub fn build(mut self) -> Graph {
        // Normalize each edge to (min, max) and sort so duplicates are
        // adjacent and can be merged with a single pass.
        for e in &mut self.edges {
            if e.0 > e.1 {
                std::mem::swap(&mut e.0, &mut e.1);
            }
        }
        self.edges.sort_unstable_by_key(|&(u, v, _)| (u, v));
        let mut merged: Vec<(u32, u32, i64)> = Vec::with_capacity(self.edges.len());
        for &(u, v, w) in &self.edges {
            match merged.last_mut() {
                Some(last) if last.0 == u && last.1 == v => last.2 += w,
                _ => merged.push((u, v, w)),
            }
        }

        let mut degree = vec![0usize; self.nv];
        for &(u, v, _) in &merged {
            degree[u as usize] += 1;
            degree[v as usize] += 1;
        }
        let mut xadj = vec![0usize; self.nv + 1];
        for v in 0..self.nv {
            xadj[v + 1] = xadj[v] + degree[v];
        }
        let nnz = xadj[self.nv];
        let mut adjncy = vec![0u32; nnz];
        let mut adjwgt = vec![0i64; nnz];
        let mut cursor = xadj[..self.nv].to_vec();
        for &(u, v, w) in &merged {
            adjncy[cursor[u as usize]] = v;
            adjwgt[cursor[u as usize]] = w;
            cursor[u as usize] += 1;
            adjncy[cursor[v as usize]] = u;
            adjwgt[cursor[v as usize]] = w;
            cursor[v as usize] += 1;
        }
        Graph::from_csr(self.ncon, xadj, adjncy, adjwgt, self.vwgt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_triangle() {
        let mut b = GraphBuilder::new(3, 1);
        for v in 0..3u32 {
            b.set_vwgt(v, &[1]);
        }
        b.add_edge(0, 1, 2).add_edge(1, 2, 3).add_edge(2, 0, 4);
        let g = b.build();
        assert_eq!(g.nv(), 3);
        assert_eq!(g.ne(), 3);
        assert_eq!(g.weighted_degree(0), 6);
        assert_eq!(g.weighted_degree(1), 5);
        assert_eq!(g.weighted_degree(2), 7);
    }

    #[test]
    fn duplicate_edges_merge() {
        let mut b = GraphBuilder::new(2, 1);
        b.set_vwgt(0, &[1]).set_vwgt(1, &[1]);
        b.add_edge(0, 1, 1).add_edge(1, 0, 2).add_edge(0, 1, 3);
        let g = b.build();
        assert_eq!(g.ne(), 1);
        assert_eq!(g.neighbors(0).next(), Some((1, 6)));
    }

    #[test]
    fn self_loops_dropped() {
        let mut b = GraphBuilder::new(2, 1);
        b.set_vwgt(0, &[1]).set_vwgt(1, &[1]);
        b.add_edge(0, 0, 9).add_edge(0, 1, 1);
        let g = b.build();
        assert_eq!(g.ne(), 1);
    }

    #[test]
    fn multiconstraint_weights_roundtrip() {
        let mut b = GraphBuilder::new(2, 3);
        b.set_vwgt(0, &[1, 2, 3]);
        b.set_vwgt_component(1, 2, 7);
        let g = b.build();
        assert_eq!(g.vwgt(0), &[1, 2, 3]);
        assert_eq!(g.vwgt(1), &[0, 0, 7]);
    }

    #[test]
    fn isolated_vertices_allowed() {
        let b = GraphBuilder::new(4, 1);
        let g = b.build();
        assert_eq!(g.nv(), 4);
        assert_eq!(g.ne(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        let mut b = GraphBuilder::new(2, 1);
        b.add_edge(0, 5, 1);
    }
}
