//! Partition quality metrics.
//!
//! Two objectives from the paper:
//!
//! * **edge-cut** — the classical objective the multilevel refinement
//!   minimizes;
//! * **total communication volume** (Hendrickson's metric, the paper's
//!   *FEComm*) — for every vertex, the number of *distinct* remote parts
//!   among its neighbors, summed over all vertices. This counts each nodal
//!   value once per remote subdomain it must be shipped to, which is the
//!   actual message volume of a halo exchange.

use crate::csr::Graph;

/// Sum of the weights of edges whose endpoints lie in different parts.
pub fn edge_cut(g: &Graph, assignment: &[u32]) -> i64 {
    debug_assert_eq!(assignment.len(), g.nv());
    let mut cut = 0i64;
    for u in 0..g.nv() as u32 {
        let pu = assignment[u as usize];
        for (v, w) in g.neighbors(u) {
            if v > u && assignment[v as usize] != pu {
                cut += w;
            }
        }
    }
    cut
}

/// Hendrickson's total communication volume: for each vertex `v`, the number
/// of distinct parts (other than `P[v]`) that own a neighbor of `v`.
///
/// This is the communication volume of one halo exchange of per-node data —
/// the paper's **FEComm** metric for the finite-element phase.
pub fn total_comm_volume(g: &Graph, assignment: &[u32]) -> u64 {
    debug_assert_eq!(assignment.len(), g.nv());
    let mut volume = 0u64;
    let mut seen: Vec<u32> = Vec::with_capacity(16);
    for u in 0..g.nv() as u32 {
        let pu = assignment[u as usize];
        seen.clear();
        for (v, _) in g.neighbors(u) {
            let pv = assignment[v as usize];
            if pv != pu && !seen.contains(&pv) {
                seen.push(pv);
            }
        }
        volume += seen.len() as u64;
    }
    volume
}

/// Vertices with at least one neighbor in another part.
pub fn boundary_vertices(g: &Graph, assignment: &[u32]) -> Vec<u32> {
    debug_assert_eq!(assignment.len(), g.nv());
    (0..g.nv() as u32)
        .filter(|&u| {
            let pu = assignment[u as usize];
            g.adj(u).iter().any(|&v| assignment[v as usize] != pu)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    /// 2x3 grid:
    /// ```text
    /// 0 - 1 - 2
    /// |   |   |
    /// 3 - 4 - 5
    /// ```
    fn grid2x3() -> Graph {
        let mut b = GraphBuilder::new(6, 1);
        for v in 0..6u32 {
            b.set_vwgt(v, &[1]);
        }
        for (u, v) in [(0, 1), (1, 2), (3, 4), (4, 5), (0, 3), (1, 4), (2, 5)] {
            b.add_edge(u, v, 1);
        }
        b.build()
    }

    #[test]
    fn edge_cut_counts_cut_edges_once() {
        let g = grid2x3();
        // Split columns {0,3} | {1,4} | {2,5}: cuts 0-1, 3-4, 1-2, 4-5.
        let asg = vec![0, 1, 2, 0, 1, 2];
        assert_eq!(edge_cut(&g, &asg), 4);
        // Everything together: no cut.
        assert_eq!(edge_cut(&g, &[0; 6]), 0);
    }

    #[test]
    fn edge_cut_respects_weights() {
        let mut b = GraphBuilder::new(2, 1);
        b.set_vwgt(0, &[1]).set_vwgt(1, &[1]);
        b.add_edge(0, 1, 7);
        let g = b.build();
        assert_eq!(edge_cut(&g, &[0, 1]), 7);
    }

    #[test]
    fn comm_volume_counts_distinct_parts() {
        let g = grid2x3();
        let asg = vec![0, 1, 2, 0, 1, 2];
        // Vertex 0: neighbors 1(p1), 3(p0) -> 1 remote part.
        // Vertex 1: neighbors 0(p0), 2(p2), 4(p1) -> 2.
        // Vertex 2: neighbors 1(p1), 5(p2) -> 1.
        // Symmetric bottom row: 1 + 2 + 1.
        assert_eq!(total_comm_volume(&g, &asg), 8);
    }

    #[test]
    fn comm_volume_le_edge_cut_for_unit_weights() {
        // With unit edge weights, comm volume never exceeds the number of
        // cut edge endpoints (2 * cut); usually it is much smaller.
        let g = grid2x3();
        let asg = vec![0, 0, 1, 0, 1, 1];
        let cut = edge_cut(&g, &asg) as u64;
        let vol = total_comm_volume(&g, &asg);
        assert!(vol <= 2 * cut);
        assert!(vol > 0);
    }

    #[test]
    fn boundary_vertices_found() {
        let g = grid2x3();
        let asg = vec![0, 0, 1, 0, 0, 1];
        let b = boundary_vertices(&g, &asg);
        assert_eq!(b, vec![1, 2, 4, 5]);
        assert!(boundary_vertices(&g, &[0; 6]).is_empty());
    }
}
