//! Fixed-dimension points.

use serde::de::{Error as DeError, SeqAccess, Visitor};
use serde::ser::SerializeTuple;
use serde::{Deserialize, Deserializer, Serialize, Serializer};

/// A point in `D`-dimensional space.
///
/// `D` is 2 for the paper's illustrative examples (Figures 1 and 2) and 3
/// for the projectile/plate evaluation workload. The representation is a
/// plain coordinate array so points pack densely in `Vec<Point<D>>` and the
/// per-dimension sweeps of the decision-tree inducer are cache-friendly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point<const D: usize> {
    /// Cartesian coordinates.
    pub coords: [f64; D],
}

// serde does not yet derive for const-generic arrays; encode a point as a
// fixed-length tuple of coordinates.
impl<const D: usize> Serialize for Point<D> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut tup = serializer.serialize_tuple(D)?;
        for c in &self.coords {
            tup.serialize_element(c)?;
        }
        tup.end()
    }
}

impl<'de, const D: usize> Deserialize<'de> for Point<D> {
    fn deserialize<De: Deserializer<'de>>(deserializer: De) -> Result<Self, De::Error> {
        struct PointVisitor<const D: usize>;
        impl<'de, const D: usize> Visitor<'de> for PointVisitor<D> {
            type Value = Point<D>;
            fn expecting(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "a tuple of {D} f64 coordinates")
            }
            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<Point<D>, A::Error> {
                let mut coords = [0.0; D];
                for (i, c) in coords.iter_mut().enumerate() {
                    *c = seq.next_element()?.ok_or_else(|| A::Error::invalid_length(i, &self))?;
                }
                Ok(Point { coords })
            }
        }
        deserializer.deserialize_tuple(D, PointVisitor::<D>)
    }
}

impl<const D: usize> Point<D> {
    /// Creates a point from its coordinate array.
    #[inline]
    pub const fn new(coords: [f64; D]) -> Self {
        Self { coords }
    }

    /// The origin (all coordinates zero).
    #[inline]
    pub const fn origin() -> Self {
        Self { coords: [0.0; D] }
    }

    /// Coordinate along dimension `dim`.
    #[inline]
    pub fn coord(&self, dim: usize) -> f64 {
        self.coords[dim]
    }

    /// Mutable coordinate along dimension `dim`.
    #[inline]
    pub fn coord_mut(&mut self, dim: usize) -> &mut f64 {
        &mut self.coords[dim]
    }

    /// Component-wise addition.
    #[inline]
    pub fn add(&self, other: &Self) -> Self {
        let mut coords = self.coords;
        for (c, o) in coords.iter_mut().zip(other.coords.iter()) {
            *c += o;
        }
        Self { coords }
    }

    /// Component-wise subtraction (`self - other`).
    #[inline]
    pub fn sub(&self, other: &Self) -> Self {
        let mut coords = self.coords;
        for (c, o) in coords.iter_mut().zip(other.coords.iter()) {
            *c -= o;
        }
        Self { coords }
    }

    /// Scales every coordinate by `s`.
    #[inline]
    pub fn scale(&self, s: f64) -> Self {
        let mut coords = self.coords;
        for c in coords.iter_mut() {
            *c *= s;
        }
        Self { coords }
    }

    /// Squared Euclidean distance to `other`.
    #[inline]
    pub fn dist2(&self, other: &Self) -> f64 {
        self.coords.iter().zip(other.coords.iter()).map(|(a, b)| (a - b) * (a - b)).sum()
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn dist(&self, other: &Self) -> f64 {
        self.dist2(other).sqrt()
    }

    /// Squared Euclidean norm.
    #[inline]
    pub fn norm2(&self) -> f64 {
        self.coords.iter().map(|c| c * c).sum()
    }

    /// The centroid of a non-empty point set.
    ///
    /// Returns `None` for an empty slice.
    pub fn centroid(points: &[Self]) -> Option<Self> {
        if points.is_empty() {
            return None;
        }
        let mut acc = Self::origin();
        for p in points {
            acc = acc.add(p);
        }
        Some(acc.scale(1.0 / points.len() as f64))
    }
}

impl<const D: usize> From<[f64; D]> for Point<D> {
    fn from(coords: [f64; D]) -> Self {
        Self { coords }
    }
}

impl<const D: usize> std::ops::Index<usize> for Point<D> {
    type Output = f64;
    #[inline]
    fn index(&self, dim: usize) -> &f64 {
        &self.coords[dim]
    }
}

impl<const D: usize> std::ops::IndexMut<usize> for Point<D> {
    #[inline]
    fn index_mut(&mut self, dim: usize) -> &mut f64 {
        &mut self.coords[dim]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_sub_roundtrip() {
        let a = Point::new([1.0, 2.0, 3.0]);
        let b = Point::new([0.5, -1.0, 4.0]);
        let c = a.add(&b).sub(&b);
        for d in 0..3 {
            assert!((c[d] - a[d]).abs() < 1e-12);
        }
    }

    #[test]
    fn distance_is_symmetric_and_zero_on_self() {
        let a = Point::new([1.0, 2.0]);
        let b = Point::new([4.0, 6.0]);
        assert_eq!(a.dist(&b), b.dist(&a));
        assert_eq!(a.dist(&a), 0.0);
        assert!((a.dist(&b) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn centroid_of_square() {
        let pts = vec![
            Point::new([0.0, 0.0]),
            Point::new([2.0, 0.0]),
            Point::new([2.0, 2.0]),
            Point::new([0.0, 2.0]),
        ];
        let c = Point::centroid(&pts).unwrap();
        assert!((c[0] - 1.0).abs() < 1e-12);
        assert!((c[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn centroid_empty_is_none() {
        let pts: Vec<Point<2>> = vec![];
        assert!(Point::centroid(&pts).is_none());
    }

    #[test]
    fn scale_and_norm() {
        let a = Point::new([3.0, 4.0]);
        assert!((a.norm2() - 25.0).abs() < 1e-12);
        let b = a.scale(2.0);
        assert!((b.norm2() - 100.0).abs() < 1e-12);
    }

    #[test]
    fn index_mut_changes_coord() {
        let mut p = Point::new([0.0, 0.0]);
        p[1] = 7.0;
        assert_eq!(p.coord(1), 7.0);
        *p.coord_mut(0) = -1.0;
        assert_eq!(p[0], -1.0);
    }
}
