//! Recursive coordinate bisection (RCB).
//!
//! RCB is the geometric partitioner used by the ML+RCB baseline
//! (Plimpton et al. '98, Brown et al. '00): the contact points are
//! recursively bisected by axis-parallel cuts along the longest extent of
//! the current point set, producing `k` parts of (approximately) equal
//! weight whose regions are axis-parallel boxes.
//!
//! Two entry points mirror the baseline's behaviour across time steps:
//!
//! * [`RcbTree::build`] — partition from scratch;
//! * [`RcbTree::update`] — keep the cut *directions* and the tree shape of
//!   a previous decomposition but shift every cut *coordinate* so the
//!   (moved) points are balanced again. This is the incremental
//!   repartitioning-style update the paper describes ("these follow-up
//!   partitionings are computed by modifying the previous RCB
//!   partitioning"), and it is what makes the baseline's migration cost
//!   (UpdComm) small.

use crate::aabb::Aabb;
use crate::plane::{AxisPlane, Side};
use crate::point::Point;
use serde::{Deserialize, Serialize};

/// Configuration for an RCB decomposition.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct RcbConfig {
    /// Number of parts to produce.
    pub k: usize,
}

impl RcbConfig {
    /// Convenience constructor.
    pub fn new(k: usize) -> Self {
        Self { k }
    }
}

/// A node of the RCB cut tree.
#[derive(Debug, Clone, Serialize, Deserialize)]
enum RcbNode {
    /// An internal cut. Points with `coord <= plane.coord` descend left.
    Internal {
        plane: AxisPlane,
        left: u32,
        right: u32,
        /// Number of parts in the left subtree (determines the balance
        /// fraction when cuts are re-fit during [`RcbTree::update`]).
        parts_left: u32,
        /// Number of parts in the right subtree.
        parts_right: u32,
    },
    /// A leaf owning one part id.
    Leaf { part: u32 },
}

/// An RCB cut tree over a weighted point set.
///
/// The tree records every cut plane, so it can (a) locate a point's part in
/// `O(log k)`, (b) enumerate the axis-parallel region of each part, and
/// (c) be *updated in place* when the points move.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RcbTree<const D: usize> {
    nodes: Vec<RcbNode>,
    root: u32,
    k: usize,
}

impl<const D: usize> RcbTree<D> {
    /// Builds a `k`-way RCB decomposition of `points` with the given
    /// per-point `weights`, returning the cut tree and the part assignment
    /// of every input point.
    ///
    /// ```
    /// use cip_geom::{Point, RcbTree};
    ///
    /// let points: Vec<Point<2>> =
    ///     (0..16).map(|i| Point::new([i as f64, 0.0])).collect();
    /// let weights = vec![1.0; 16];
    /// let (tree, assignment) = RcbTree::build(&points, &weights, 4);
    /// // Each quarter of the line becomes one part of 4 points.
    /// for part in 0..4u32 {
    ///     assert_eq!(assignment.iter().filter(|&&p| p == part).count(), 4);
    /// }
    /// // The tree answers point-location queries.
    /// assert_eq!(tree.locate(&points[0]), assignment[0]);
    /// ```
    ///
    /// # Panics
    /// Panics if `k == 0`, or if `weights.len() != points.len()`.
    pub fn build(points: &[Point<D>], weights: &[f64], k: usize) -> (Self, Vec<u32>) {
        assert!(k > 0, "RCB requires k >= 1");
        assert_eq!(points.len(), weights.len(), "one weight per point");
        let mut tree = Self { nodes: Vec::with_capacity(2 * k), root: 0, k };
        let mut assignment = vec![0u32; points.len()];
        let mut indices: Vec<usize> = (0..points.len()).collect();
        tree.root = tree.build_rec(points, weights, &mut indices, 0, k as u32, &mut assignment);
        (tree, assignment)
    }

    /// Number of parts this tree decomposes into.
    pub fn num_parts(&self) -> usize {
        self.k
    }

    /// Number of nodes (internal + leaf) in the cut tree.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    fn push(&mut self, node: RcbNode) -> u32 {
        let id = self.nodes.len() as u32;
        self.nodes.push(node);
        id
    }

    /// Recursively builds the subtree for parts `[part_lo, part_lo + nparts)`
    /// over the points indexed by `indices`, writing their assignments.
    fn build_rec(
        &mut self,
        points: &[Point<D>],
        weights: &[f64],
        indices: &mut [usize],
        part_lo: u32,
        nparts: u32,
        assignment: &mut [u32],
    ) -> u32 {
        if nparts == 1 {
            for &i in indices.iter() {
                assignment[i] = part_lo;
            }
            return self.push(RcbNode::Leaf { part: part_lo });
        }
        let parts_left = nparts / 2;
        let parts_right = nparts - parts_left;
        let frac = parts_left as f64 / nparts as f64;

        let plane = choose_cut(points, weights, indices, frac);
        let mid = partition_by_plane(points, indices, &plane);
        let (li, ri) = indices.split_at_mut(mid);
        let left = self.build_rec(points, weights, li, part_lo, parts_left, assignment);
        let right =
            self.build_rec(points, weights, ri, part_lo + parts_left, parts_right, assignment);
        self.push(RcbNode::Internal { plane, left, right, parts_left, parts_right })
    }

    /// Re-fits every cut coordinate to a new point configuration while
    /// keeping the tree shape, cut dimensions, and part ids fixed, and
    /// returns the new part assignment.
    ///
    /// The number of points may differ from the build-time count (contact
    /// sets grow and shrink as elements erode); balance is re-established
    /// with respect to the *current* weights.
    pub fn update(&mut self, points: &[Point<D>], weights: &[f64]) -> Vec<u32> {
        assert_eq!(points.len(), weights.len(), "one weight per point");
        let mut assignment = vec![0u32; points.len()];
        let mut indices: Vec<usize> = (0..points.len()).collect();
        let root = self.root;
        self.update_rec(root, points, weights, &mut indices, &mut assignment);
        assignment
    }

    fn update_rec(
        &mut self,
        node: u32,
        points: &[Point<D>],
        weights: &[f64],
        indices: &mut [usize],
        assignment: &mut [u32],
    ) {
        match self.nodes[node as usize] {
            RcbNode::Leaf { part } => {
                for &i in indices.iter() {
                    assignment[i] = part;
                }
            }
            RcbNode::Internal { plane, left, right, parts_left, parts_right } => {
                let frac = parts_left as f64 / (parts_left + parts_right) as f64;
                // Re-fit the cut along the *same* dimension; fall back to the
                // old coordinate if the points are degenerate along it.
                let new_plane = refit_cut(points, weights, indices, plane, frac);
                if let RcbNode::Internal { plane: p, .. } = &mut self.nodes[node as usize] {
                    *p = new_plane;
                }
                let mid = partition_by_plane(points, indices, &new_plane);
                let (li, ri) = indices.split_at_mut(mid);
                self.update_rec(left, points, weights, li, assignment);
                self.update_rec(right, points, weights, ri, assignment);
            }
        }
    }

    /// Locates the part owning the region that contains `p`.
    pub fn locate(&self, p: &Point<D>) -> u32 {
        let mut node = self.root;
        loop {
            match &self.nodes[node as usize] {
                RcbNode::Leaf { part } => return *part,
                RcbNode::Internal { plane, left, right, .. } => {
                    node = match plane.point_side(p) {
                        Side::Left => *left,
                        _ => *right,
                    };
                }
            }
        }
    }

    /// Collects the (sorted, deduplicated) set of parts whose *region*
    /// intersects the query box into `out`.
    ///
    /// This is the region-based global-search filter: unlike point bounding
    /// boxes it never under-approximates a part's territory.
    pub fn query_box(&self, b: &Aabb<D>, out: &mut Vec<u32>) {
        out.clear();
        self.query_rec(self.root, b, out);
        out.sort_unstable();
        out.dedup();
    }

    fn query_rec(&self, node: u32, b: &Aabb<D>, out: &mut Vec<u32>) {
        match &self.nodes[node as usize] {
            RcbNode::Leaf { part } => out.push(*part),
            RcbNode::Internal { plane, left, right, .. } => match plane.box_side(b) {
                Side::Left => self.query_rec(*left, b, out),
                Side::Right => self.query_rec(*right, b, out),
                Side::Both => {
                    self.query_rec(*left, b, out);
                    self.query_rec(*right, b, out);
                }
            },
        }
    }

    /// Enumerates each part's axis-parallel region, clipped to `bounds`.
    pub fn regions(&self, bounds: &Aabb<D>) -> Vec<(u32, Aabb<D>)> {
        let mut out = Vec::with_capacity(self.k);
        self.regions_rec(self.root, *bounds, &mut out);
        out.sort_unstable_by_key(|(p, _)| *p);
        out
    }

    fn regions_rec(&self, node: u32, region: Aabb<D>, out: &mut Vec<(u32, Aabb<D>)>) {
        match &self.nodes[node as usize] {
            RcbNode::Leaf { part } => out.push((*part, region)),
            RcbNode::Internal { plane, left, right, .. } => {
                let (l, r) = plane.split_box(&region);
                self.regions_rec(*left, l, out);
                self.regions_rec(*right, r, out);
            }
        }
    }
}

/// Reorders `indices` so that points on the plane's left side come first;
/// returns the split position.
fn partition_by_plane<const D: usize>(
    points: &[Point<D>],
    indices: &mut [usize],
    plane: &AxisPlane,
) -> usize {
    let mut lo = 0;
    let mut hi = indices.len();
    while lo < hi {
        if plane.point_side(&points[indices[lo]]) == Side::Left {
            lo += 1;
        } else {
            hi -= 1;
            indices.swap(lo, hi);
        }
    }
    lo
}

/// Chooses the best cut for `indices`: tries the longest extent first and
/// falls back to other dimensions if the point set is degenerate along it.
fn choose_cut<const D: usize>(
    points: &[Point<D>],
    weights: &[f64],
    indices: &mut [usize],
    frac: f64,
) -> AxisPlane {
    let bbox = Aabb::from_indexed_points(points, indices);
    let mut dims: Vec<usize> = (0..D).collect();
    dims.sort_by(|&a, &b| {
        bbox.extent(b).partial_cmp(&bbox.extent(a)).unwrap_or(std::cmp::Ordering::Equal)
    });
    for &dim in &dims {
        if let Some(coord) = fit_cut_coordinate(points, weights, indices, dim, frac) {
            return AxisPlane::new(dim, coord);
        }
    }
    // Fully degenerate point set (all points identical, or empty): any plane
    // that sends everything left keeps the recursion well-defined.
    let coord = indices.first().map_or(0.0, |&i| points[i][dims[0]]);
    AxisPlane::new(dims[0], coord)
}

/// Re-fits an existing cut's coordinate along its original dimension,
/// keeping the old coordinate when the points are degenerate along it.
fn refit_cut<const D: usize>(
    points: &[Point<D>],
    weights: &[f64],
    indices: &mut [usize],
    old: AxisPlane,
    frac: f64,
) -> AxisPlane {
    match fit_cut_coordinate(points, weights, indices, old.dim, frac) {
        Some(coord) => AxisPlane::new(old.dim, coord),
        None => old,
    }
}

/// Finds the cut coordinate along `dim` whose left-side weight best matches
/// `frac` of the total weight. Returns `None` when every point shares the
/// same coordinate along `dim` (no cut can separate anything).
///
/// The cut is always placed *on* a point coordinate (the closed-left
/// convention of [`AxisPlane`] then puts that point on the left), so ties
/// are handled consistently between assignment and later `locate` calls.
fn fit_cut_coordinate<const D: usize>(
    points: &[Point<D>],
    weights: &[f64],
    indices: &mut [usize],
    dim: usize,
    frac: f64,
) -> Option<f64> {
    if indices.len() < 2 {
        return None;
    }
    indices.sort_unstable_by(|&a, &b| {
        points[a][dim].partial_cmp(&points[b][dim]).unwrap_or(std::cmp::Ordering::Equal)
    });
    let first = points[indices[0]][dim];
    let last = points[*indices.last().unwrap()][dim];
    if first == last {
        return None;
    }
    let total: f64 = indices.iter().map(|&i| weights[i]).sum();
    let target = total * frac;

    // Sweep split positions that lie between distinct consecutive
    // coordinates; pick the one whose cumulative left weight is closest to
    // the target. The cut coordinate is the left point's coordinate.
    let mut best_coord = first;
    let mut best_err = f64::INFINITY;
    let mut acc = 0.0;
    for w in 0..indices.len() - 1 {
        acc += weights[indices[w]];
        let here = points[indices[w]][dim];
        let next = points[indices[w + 1]][dim];
        if here == next {
            continue; // cannot cut between equal coordinates
        }
        let err = (acc - target).abs();
        if err < best_err {
            best_err = err;
            best_coord = here;
        }
    }
    if best_err.is_infinite() {
        None
    } else {
        Some(best_coord)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid2d(nx: usize, ny: usize) -> Vec<Point<2>> {
        let mut pts = Vec::with_capacity(nx * ny);
        for j in 0..ny {
            for i in 0..nx {
                pts.push(Point::new([i as f64, j as f64]));
            }
        }
        pts
    }

    fn part_weights(assignment: &[u32], weights: &[f64], k: usize) -> Vec<f64> {
        let mut w = vec![0.0; k];
        for (i, &p) in assignment.iter().enumerate() {
            w[p as usize] += weights[i];
        }
        w
    }

    #[test]
    fn build_covers_all_parts_and_balances() {
        let pts = grid2d(20, 20);
        let wts = vec![1.0; pts.len()];
        for k in [2usize, 3, 4, 7, 8, 16] {
            let (tree, asg) = RcbTree::build(&pts, &wts, k);
            assert_eq!(tree.num_parts(), k);
            let pw = part_weights(&asg, &wts, k);
            let avg = pts.len() as f64 / k as f64;
            for (p, w) in pw.iter().enumerate() {
                assert!(*w > 0.0, "part {p} empty for k={k}");
                assert!(
                    *w <= avg * 1.5 + 1.0,
                    "part {p} weight {w} too far above average {avg} for k={k}"
                );
            }
        }
    }

    #[test]
    fn locate_agrees_with_assignment() {
        let pts = grid2d(15, 11);
        let wts = vec![1.0; pts.len()];
        let (tree, asg) = RcbTree::build(&pts, &wts, 6);
        for (i, p) in pts.iter().enumerate() {
            assert_eq!(tree.locate(p), asg[i], "point {i} mislocated");
        }
    }

    #[test]
    fn k_equals_one_is_trivial() {
        let pts = grid2d(4, 4);
        let wts = vec![1.0; pts.len()];
        let (tree, asg) = RcbTree::build(&pts, &wts, 1);
        assert!(asg.iter().all(|&p| p == 0));
        assert_eq!(tree.num_nodes(), 1);
    }

    #[test]
    fn weighted_split_respects_weights() {
        // Two clusters: heavy singleton left, many light points right. A
        // 2-way split should put the heavy point alone.
        let mut pts = vec![Point::new([0.0, 0.0])];
        for i in 0..10 {
            pts.push(Point::new([10.0 + i as f64, 0.0]));
        }
        let mut wts = vec![10.0];
        wts.extend(std::iter::repeat_n(1.0, 10));
        let (_, asg) = RcbTree::build(&pts, &wts, 2);
        let pw = part_weights(&asg, &wts, 2);
        assert!((pw[0] - pw[1]).abs() <= 10.0);
        // The heavy point must be alone on its side.
        let heavy_part = asg[0];
        assert_eq!(asg.iter().filter(|&&p| p == heavy_part).count(), 1);
    }

    #[test]
    fn update_keeps_parts_and_rebalances() {
        let pts = grid2d(16, 16);
        let wts = vec![1.0; pts.len()];
        let (mut tree, asg0) = RcbTree::build(&pts, &wts, 8);
        // Shift all points; balance must be restored and most points should
        // stay in their part (pure translation => identical relative order).
        let moved: Vec<Point<2>> =
            pts.iter().map(|p| Point::new([p[0] + 3.0, p[1] - 1.0])).collect();
        let asg1 = tree.update(&moved, &wts);
        let pw = part_weights(&asg1, &wts, 8);
        let avg = pts.len() as f64 / 8.0;
        for w in &pw {
            assert!(*w >= avg * 0.5 && *w <= avg * 1.5);
        }
        let migrated = asg0.iter().zip(asg1.iter()).filter(|(a, b)| a != b).count();
        assert_eq!(migrated, 0, "pure translation should migrate nothing");
    }

    #[test]
    fn update_handles_shrinking_point_set() {
        let pts = grid2d(12, 12);
        let wts = vec![1.0; pts.len()];
        let (mut tree, _) = RcbTree::build(&pts, &wts, 4);
        let fewer: Vec<Point<2>> = pts[..60].to_vec();
        let fw = vec![1.0; 60];
        let asg = tree.update(&fewer, &fw);
        assert_eq!(asg.len(), 60);
        let pw = part_weights(&asg, &fw, 4);
        assert!(pw.iter().all(|&w| w > 0.0));
    }

    #[test]
    fn regions_tile_the_bounds() {
        let pts = grid2d(10, 10);
        let wts = vec![1.0; pts.len()];
        let (tree, asg) = RcbTree::build(&pts, &wts, 5);
        let bounds = Aabb::from_points(&pts);
        let regions = tree.regions(&bounds);
        assert_eq!(regions.len(), 5);
        let vol: f64 = regions.iter().map(|(_, b)| b.volume()).sum();
        assert!((vol - bounds.volume()).abs() < 1e-9, "regions must tile the domain");
        // Each point must be inside its own part's region.
        for (i, p) in pts.iter().enumerate() {
            let (_, reg) = regions.iter().find(|(q, _)| *q == asg[i]).unwrap();
            assert!(reg.contains_point(p));
        }
    }

    #[test]
    fn query_box_returns_superset_of_owning_parts() {
        let pts = grid2d(20, 20);
        let wts = vec![1.0; pts.len()];
        let (tree, asg) = RcbTree::build(&pts, &wts, 7);
        let query = Aabb::new(Point::new([3.5, 3.5]), Point::new([9.5, 12.5]));
        let mut hits = Vec::new();
        tree.query_box(&query, &mut hits);
        for (i, p) in pts.iter().enumerate() {
            if query.contains_point(p) {
                assert!(
                    hits.contains(&asg[i]),
                    "part {} owns an in-box point but was not reported",
                    asg[i]
                );
            }
        }
    }

    #[test]
    fn degenerate_identical_points_do_not_crash() {
        let pts = vec![Point::new([1.0, 1.0]); 9];
        let wts = vec![1.0; 9];
        let (tree, asg) = RcbTree::build(&pts, &wts, 3);
        assert_eq!(asg.len(), 9);
        assert_eq!(tree.num_parts(), 3);
    }
}
