//! Property-based tests for the geometry kernel (compiled only with
//! `cfg(test)`).

#![cfg(test)]

use crate::{Aabb, AxisPlane, Point, RcbTree, Side};
use proptest::prelude::*;

fn arb_point2() -> impl Strategy<Value = Point<2>> {
    ((-1000i32..1000), (-1000i32..1000))
        .prop_map(|(x, y)| Point::new([x as f64 / 4.0, y as f64 / 4.0]))
}

fn arb_box2() -> impl Strategy<Value = Aabb<2>> {
    (arb_point2(), (0u32..400), (0u32..400)).prop_map(|(p, w, h)| {
        Aabb::new(p, Point::new([p[0] + w as f64 / 4.0, p[1] + h as f64 / 4.0]))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Union contains both operands; intersection is symmetric.
    #[test]
    fn union_contains_operands(a in arb_box2(), b in arb_box2()) {
        let u = a.union(&b);
        prop_assert!(u.contains_box(&a));
        prop_assert!(u.contains_box(&b));
        prop_assert_eq!(a.intersects(&b), b.intersects(&a));
    }

    /// A point is in the union iff the box grown to it contains it.
    #[test]
    fn grow_makes_point_contained(b in arb_box2(), p in arb_point2()) {
        let mut g = b;
        g.grow(&p);
        prop_assert!(g.contains_point(&p));
        prop_assert!(g.contains_box(&b));
    }

    /// Inflate by a nonnegative margin preserves containment and grows
    /// volume monotonically.
    #[test]
    fn inflate_monotone(b in arb_box2(), m in 0u32..100) {
        let margin = m as f64 / 8.0;
        let big = b.inflate(margin);
        prop_assert!(big.contains_box(&b));
        prop_assert!(big.volume() >= b.volume());
    }

    /// split_box partitions the volume exactly and both halves are inside.
    #[test]
    fn split_box_partitions(b in arb_box2(), dim in 0usize..2, t in 0.0f64..1.0) {
        let coord = b.min[dim] + t * b.extent(dim);
        let plane = AxisPlane::new(dim, coord);
        let (l, r) = plane.split_box(&b);
        prop_assert!((l.volume() + r.volume() - b.volume()).abs() < 1e-9 * b.volume().max(1.0));
        prop_assert!(b.contains_box(&l) || l.volume() == 0.0);
        prop_assert!(b.contains_box(&r) || r.volume() == 0.0);
    }

    /// Point side tests are consistent with box side tests: a degenerate
    /// box at a point sides the same way the point does.
    #[test]
    fn point_and_box_sides_agree(p in arb_point2(), dim in 0usize..2, c in -1000i32..1000) {
        let plane = AxisPlane::new(dim, c as f64 / 4.0);
        let b = Aabb::from_point(p);
        match plane.point_side(&p) {
            Side::Left => prop_assert_eq!(plane.box_side(&b), Side::Left),
            Side::Right => prop_assert_eq!(plane.box_side(&b), Side::Right),
            Side::Both => unreachable!("points are never on both sides"),
        }
    }

    /// RCB's regions query and point location agree for every input point,
    /// and an updated tree remains consistent after points move.
    #[test]
    fn rcb_update_remains_consistent(
        pts in proptest::collection::vec(arb_point2(), 10..80),
        k in 1usize..6,
        dx in -100i32..100,
    ) {
        let weights = vec![1.0; pts.len()];
        let (mut tree, asg) = RcbTree::build(&pts, &weights, k);
        for (i, p) in pts.iter().enumerate() {
            prop_assert_eq!(tree.locate(p), asg[i]);
        }
        let moved: Vec<Point<2>> = pts
            .iter()
            .map(|p| Point::new([p[0] + dx as f64 / 4.0, p[1]]))
            .collect();
        let asg2 = tree.update(&moved, &weights);
        for (i, p) in moved.iter().enumerate() {
            prop_assert_eq!(tree.locate(p), asg2[i]);
        }
        prop_assert!(asg2.iter().all(|&p| (p as usize) < k));
    }
}
