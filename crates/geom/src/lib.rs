//! Geometry kernel for contact/impact mesh partitioning.
//!
//! This crate provides the geometric substrate shared by the rest of the
//! workspace:
//!
//! * fixed-dimension points ([`Point`]) in 2D or 3D,
//! * axis-aligned bounding boxes ([`Aabb`]) with the union / intersection /
//!   containment operations needed by the contact-search filters,
//! * axis-parallel hyperplanes ([`AxisPlane`]) — the decision hyperplanes of
//!   the paper's space-partitioning trees,
//! * recursive coordinate bisection ([`rcb`]) — the geometric partitioner
//!   used by the ML+RCB baseline of Plimpton et al., in both its
//!   from-scratch and incremental (cut-shifting) forms.
//!
//! Everything is generic over the spatial dimension `D` (2 or 3) via const
//! generics, so the same code paths serve the paper's 2D illustrations
//! (Figures 1 and 2) and the 3D evaluation workload.

pub mod aabb;
pub mod plane;
pub mod point;
mod proptests;
pub mod rcb;

pub use aabb::Aabb;
pub use plane::{AxisPlane, Side};
pub use point::Point;
pub use rcb::{RcbConfig, RcbTree};
