//! Axis-parallel hyperplanes (the paper's "decision hyperplanes").

use crate::aabb::Aabb;
use crate::point::Point;
use serde::{Deserialize, Serialize};

/// Which side of an [`AxisPlane`] an entity lies on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// Strictly on the `coord <= plane` side (the tree's *yes* branch).
    Left,
    /// Strictly on the `coord > plane` side (the tree's *no* branch).
    Right,
    /// Straddles the plane (boxes only).
    Both,
}

/// An axis-parallel hyperplane `x[dim] = coord`.
///
/// Following the paper's decision-tree convention, the *left* (yes) side is
/// the closed half-space `x[dim] <= coord` and the *right* (no) side is the
/// open half-space `x[dim] > coord`. Every point therefore lands on exactly
/// one side; only extended objects (boxes) can straddle.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AxisPlane {
    /// The split dimension (0 = x, 1 = y, 2 = z).
    pub dim: usize,
    /// The split coordinate.
    pub coord: f64,
}

impl AxisPlane {
    /// Creates the hyperplane `x[dim] = coord`.
    #[inline]
    pub const fn new(dim: usize, coord: f64) -> Self {
        Self { dim, coord }
    }

    /// Side test for a point: `Left` iff `p[dim] <= coord`.
    #[inline]
    pub fn point_side<const D: usize>(&self, p: &Point<D>) -> Side {
        if p[self.dim] <= self.coord {
            Side::Left
        } else {
            Side::Right
        }
    }

    /// Side test for a box: `Both` when the box straddles the plane.
    ///
    /// A box whose maximum touches the plane exactly is fully `Left` (the
    /// left half-space is closed); a box whose minimum is strictly greater
    /// than the plane is fully `Right`.
    #[inline]
    pub fn box_side<const D: usize>(&self, b: &Aabb<D>) -> Side {
        if b.max[self.dim] <= self.coord {
            Side::Left
        } else if b.min[self.dim] > self.coord {
            Side::Right
        } else {
            Side::Both
        }
    }

    /// Splits `b` into its left and right sub-boxes along this plane.
    ///
    /// The sub-box on a side the box does not reach is empty-clamped to the
    /// plane (zero thickness), which is harmless for filter purposes.
    pub fn split_box<const D: usize>(&self, b: &Aabb<D>) -> (Aabb<D>, Aabb<D>) {
        let mut lmax = b.max;
        lmax[self.dim] = lmax[self.dim].min(self.coord);
        let mut rmin = b.min;
        rmin[self.dim] = rmin[self.dim].max(self.coord);
        (Aabb { min: b.min, max: lmax }, Aabb { min: rmin, max: b.max })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_sides_follow_closed_left_convention() {
        let pl = AxisPlane::new(0, 1.0);
        assert_eq!(pl.point_side(&Point::new([0.5, 9.0])), Side::Left);
        assert_eq!(pl.point_side(&Point::new([1.0, 9.0])), Side::Left);
        assert_eq!(pl.point_side(&Point::new([1.0 + 1e-12, 9.0])), Side::Right);
    }

    #[test]
    fn box_sides() {
        let pl = AxisPlane::new(1, 2.0);
        let left = Aabb::new(Point::new([0.0, 0.0]), Point::new([5.0, 2.0]));
        let right = Aabb::new(Point::new([0.0, 2.5]), Point::new([5.0, 3.0]));
        let both = Aabb::new(Point::new([0.0, 1.0]), Point::new([5.0, 3.0]));
        assert_eq!(pl.box_side(&left), Side::Left);
        assert_eq!(pl.box_side(&right), Side::Right);
        assert_eq!(pl.box_side(&both), Side::Both);
    }

    #[test]
    fn split_box_partitions_volume() {
        let pl = AxisPlane::new(0, 3.0);
        let b = Aabb::new(Point::new([0.0, 0.0]), Point::new([10.0, 1.0]));
        let (l, r) = pl.split_box(&b);
        assert_eq!(l.max[0], 3.0);
        assert_eq!(r.min[0], 3.0);
        assert!((l.volume() + r.volume() - b.volume()).abs() < 1e-12);
    }

    #[test]
    fn split_box_outside_plane_clamps() {
        let pl = AxisPlane::new(0, -5.0);
        let b = Aabb::new(Point::new([0.0, 0.0]), Point::new([1.0, 1.0]));
        let (l, r) = pl.split_box(&b);
        assert!(l.volume() == 0.0 || l.is_empty());
        assert!((r.volume() - b.volume()).abs() < 1e-12);
    }
}
