//! Axis-aligned bounding boxes.

use crate::point::Point;
use serde::{Deserialize, Serialize};

/// An axis-aligned bounding box in `D` dimensions.
///
/// Boxes are closed on both ends: a point lying exactly on a face is
/// considered contained, and two boxes sharing only a face are considered
/// intersecting. This matters for contact search, where a surface element
/// lying exactly on a subdomain boundary must be shipped to both sides
/// (erring towards a false positive is safe; missing a contact is not).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Aabb<const D: usize> {
    /// Minimum corner.
    pub min: Point<D>,
    /// Maximum corner.
    pub max: Point<D>,
}

impl<const D: usize> Aabb<D> {
    /// Creates a box from its two corners. Debug-asserts `min <= max`
    /// component-wise.
    #[inline]
    pub fn new(min: Point<D>, max: Point<D>) -> Self {
        debug_assert!((0..D).all(|d| min[d] <= max[d]), "inverted AABB");
        Self { min, max }
    }

    /// The "empty" box: +inf minima, -inf maxima. It is the identity for
    /// [`Aabb::union`] and intersects nothing.
    #[inline]
    pub fn empty() -> Self {
        Self { min: Point::new([f64::INFINITY; D]), max: Point::new([f64::NEG_INFINITY; D]) }
    }

    /// Whether this box is the empty box (no point is contained).
    #[inline]
    pub fn is_empty(&self) -> bool {
        (0..D).any(|d| self.min[d] > self.max[d])
    }

    /// A degenerate box containing a single point.
    #[inline]
    pub fn from_point(p: Point<D>) -> Self {
        Self { min: p, max: p }
    }

    /// The tight bounding box of a point set (empty box for an empty set).
    pub fn from_points(points: &[Point<D>]) -> Self {
        let mut b = Self::empty();
        for p in points {
            b.grow(p);
        }
        b
    }

    /// The tight bounding box of a subset of a point set, given by indices.
    pub fn from_indexed_points(points: &[Point<D>], indices: &[usize]) -> Self {
        let mut b = Self::empty();
        for &i in indices {
            b.grow(&points[i]);
        }
        b
    }

    /// Expands the box (in place) to contain `p`.
    #[inline]
    pub fn grow(&mut self, p: &Point<D>) {
        for d in 0..D {
            if p[d] < self.min[d] {
                self.min[d] = p[d];
            }
            if p[d] > self.max[d] {
                self.max[d] = p[d];
            }
        }
    }

    /// The smallest box containing both operands.
    #[inline]
    pub fn union(&self, other: &Self) -> Self {
        let mut min = self.min;
        let mut max = self.max;
        for d in 0..D {
            min[d] = min[d].min(other.min[d]);
            max[d] = max[d].max(other.max[d]);
        }
        Self { min, max }
    }

    /// Whether the two boxes share at least one point (closed-interval
    /// semantics; face contact counts).
    #[inline]
    pub fn intersects(&self, other: &Self) -> bool {
        (0..D).all(|d| self.min[d] <= other.max[d] && other.min[d] <= self.max[d])
    }

    /// Whether `p` lies inside or on the boundary of the box.
    #[inline]
    pub fn contains_point(&self, p: &Point<D>) -> bool {
        (0..D).all(|d| self.min[d] <= p[d] && p[d] <= self.max[d])
    }

    /// Whether `other` is fully inside this box (closed semantics).
    #[inline]
    pub fn contains_box(&self, other: &Self) -> bool {
        (0..D).all(|d| self.min[d] <= other.min[d] && other.max[d] <= self.max[d])
    }

    /// Expands every face outward by `margin` (a "capture distance" pad used
    /// by proximity-based contact search).
    #[inline]
    pub fn inflate(&self, margin: f64) -> Self {
        let mut min = self.min;
        let mut max = self.max;
        for d in 0..D {
            min[d] -= margin;
            max[d] += margin;
        }
        Self { min, max }
    }

    /// Extent (side length) along dimension `dim`.
    #[inline]
    pub fn extent(&self, dim: usize) -> f64 {
        self.max[dim] - self.min[dim]
    }

    /// The dimension with the largest extent (ties broken towards the lower
    /// dimension index). This is the canonical RCB cut direction.
    pub fn longest_dim(&self) -> usize {
        let mut best = 0;
        let mut best_ext = self.extent(0);
        for d in 1..D {
            let e = self.extent(d);
            if e > best_ext {
                best = d;
                best_ext = e;
            }
        }
        best
    }

    /// Geometric center of the box.
    #[inline]
    pub fn center(&self) -> Point<D> {
        let mut c = self.min;
        for d in 0..D {
            c[d] = 0.5 * (self.min[d] + self.max[d]);
        }
        c
    }

    /// Squared Euclidean distance from `p` to the box (0 when inside).
    #[inline]
    pub fn dist2_to_point(&self, p: &Point<D>) -> f64 {
        let mut acc = 0.0;
        for d in 0..D {
            let c = p[d];
            let lo = self.min[d];
            let hi = self.max[d];
            let delta = if c < lo {
                lo - c
            } else if c > hi {
                c - hi
            } else {
                0.0
            };
            acc += delta * delta;
        }
        acc
    }

    /// D-dimensional volume (area in 2D). Empty boxes report zero.
    pub fn volume(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        (0..D).map(|d| self.extent(d)).product()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn boxed(min: [f64; 2], max: [f64; 2]) -> Aabb<2> {
        Aabb::new(Point::new(min), Point::new(max))
    }

    #[test]
    fn empty_box_behaves_as_identity() {
        let e = Aabb::<2>::empty();
        assert!(e.is_empty());
        assert_eq!(e.volume(), 0.0);
        let b = boxed([0.0, 0.0], [1.0, 1.0]);
        assert_eq!(e.union(&b), b);
        assert!(!e.intersects(&b));
        assert!(!e.contains_point(&Point::new([0.5, 0.5])));
    }

    #[test]
    fn from_points_is_tight() {
        let pts = vec![Point::new([1.0, 5.0]), Point::new([-2.0, 3.0]), Point::new([4.0, -1.0])];
        let b = Aabb::from_points(&pts);
        assert_eq!(b.min, Point::new([-2.0, -1.0]));
        assert_eq!(b.max, Point::new([4.0, 5.0]));
        for p in &pts {
            assert!(b.contains_point(p));
        }
    }

    #[test]
    fn face_contact_counts_as_intersection() {
        let a = boxed([0.0, 0.0], [1.0, 1.0]);
        let b = boxed([1.0, 0.0], [2.0, 1.0]);
        assert!(a.intersects(&b));
        assert!(b.intersects(&a));
        let c = boxed([1.0 + 1e-9, 0.0], [2.0, 1.0]);
        assert!(!a.intersects(&c));
    }

    #[test]
    fn containment() {
        let outer = boxed([0.0, 0.0], [10.0, 10.0]);
        let inner = boxed([2.0, 2.0], [3.0, 3.0]);
        assert!(outer.contains_box(&inner));
        assert!(!inner.contains_box(&outer));
        assert!(outer.contains_box(&outer), "closed semantics: self-containment");
    }

    #[test]
    fn inflate_grows_all_faces() {
        let b = boxed([0.0, 0.0], [1.0, 2.0]).inflate(0.5);
        assert_eq!(b.min, Point::new([-0.5, -0.5]));
        assert_eq!(b.max, Point::new([1.5, 2.5]));
    }

    #[test]
    fn longest_dim_and_volume() {
        let b = boxed([0.0, 0.0], [2.0, 5.0]);
        assert_eq!(b.longest_dim(), 1);
        assert!((b.volume() - 10.0).abs() < 1e-12);
        let sq = boxed([0.0, 0.0], [3.0, 3.0]);
        assert_eq!(sq.longest_dim(), 0, "ties break low");
    }

    #[test]
    fn center_of_unit_box() {
        let b = boxed([0.0, 0.0], [1.0, 1.0]);
        assert_eq!(b.center(), Point::new([0.5, 0.5]));
    }

    #[test]
    fn point_box_distance() {
        let b = boxed([0.0, 0.0], [2.0, 2.0]);
        assert_eq!(b.dist2_to_point(&Point::new([1.0, 1.0])), 0.0, "inside");
        assert_eq!(b.dist2_to_point(&Point::new([2.0, 2.0])), 0.0, "on corner");
        assert_eq!(b.dist2_to_point(&Point::new([3.0, 2.0])), 1.0, "beside");
        assert_eq!(b.dist2_to_point(&Point::new([3.0, 3.0])), 2.0, "diagonal");
        assert_eq!(b.dist2_to_point(&Point::new([-2.0, 1.0])), 4.0);
    }

    #[test]
    fn from_indexed_points_subsets() {
        let pts = vec![Point::new([0.0, 0.0]), Point::new([10.0, 10.0]), Point::new([1.0, 1.0])];
        let b = Aabb::from_indexed_points(&pts, &[0, 2]);
        assert_eq!(b.max, Point::new([1.0, 1.0]));
    }
}
