//! Node-vs-face local search.
//!
//! Production contact codes (the paper cites Zhong & Nilsson, Heinstein
//! et al., Oldenburg & Nilsson) detect contact between a *slave node* and
//! a *master face*: a node of one body penetrating (or within the capture
//! distance of) a face of another body. This module supplies that
//! detection mode alongside the element-pair mode of [`crate::local`];
//! the grid broad phase keeps it near linear.

use crate::grid::UniformGrid;
use cip_geom::{Aabb, Point};
use rayon::prelude::*;

/// A candidate node-face contact.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeFaceContact {
    /// Index of the node in the caller's node array.
    pub node: u32,
    /// Index of the face in the caller's face array.
    pub face: u32,
    /// Squared distance from the node to the face's bounding box
    /// (0 = inside the box).
    pub dist2: f64,
}

/// Finds all (node, face) pairs with `body[node] != face_body[face]` whose
/// node lies within `tolerance` of the face's bounding box.
///
/// Results are sorted by `(node, face)`. Deterministic.
pub fn find_node_face_contacts<const D: usize>(
    nodes: &[Point<D>],
    node_body: &[u16],
    faces: &[Aabb<D>],
    face_body: &[u16],
    tolerance: f64,
) -> Vec<NodeFaceContact> {
    assert_eq!(nodes.len(), node_body.len(), "one body per node");
    assert_eq!(faces.len(), face_body.len(), "one body per face");
    let grid = UniformGrid::build_auto(faces);
    let tol2 = tolerance * tolerance;
    // One (stamp scratch, candidate buffer) per worker via map_init, so
    // the hot query loop does not allocate per node.
    let mut contacts: Vec<NodeFaceContact> = nodes
        .par_iter()
        .enumerate()
        .map_init(
            || (grid.scratch(), Vec::new()),
            |(scratch, out), (n, p)| {
                let q = Aabb::from_point(*p).inflate(tolerance);
                grid.query(&q, scratch, out);
                let mut local = Vec::new();
                for &f in out.iter() {
                    if node_body[n] == face_body[f as usize] {
                        continue;
                    }
                    let d2 = faces[f as usize].dist2_to_point(p);
                    if d2 <= tol2 {
                        local.push(NodeFaceContact { node: n as u32, face: f, dist2: d2 });
                    }
                }
                local
            },
        )
        .flatten()
        .collect();
    contacts.sort_by_key(|c| (c.node, c.face));
    contacts
}

#[cfg(test)]
mod tests {
    use super::*;

    fn face(x: f64, y: f64) -> Aabb<2> {
        Aabb::new(Point::new([x, y]), Point::new([x + 1.0, y + 0.1]))
    }

    #[test]
    fn detects_node_near_other_body_face() {
        let nodes = vec![Point::new([0.5, 0.3]), Point::new([5.0, 5.0])];
        let node_body = vec![1, 1];
        let faces = vec![face(0.0, 0.0)];
        let face_body = vec![0];
        let hits = find_node_face_contacts(&nodes, &node_body, &faces, &face_body, 0.25);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].node, 0);
        assert_eq!(hits[0].face, 0);
        assert!((hits[0].dist2 - 0.04).abs() < 1e-12, "0.2 above the face");
    }

    #[test]
    fn same_body_is_ignored() {
        let nodes = vec![Point::new([0.5, 0.05])];
        let node_body = vec![0];
        let faces = vec![face(0.0, 0.0)];
        let face_body = vec![0];
        assert!(find_node_face_contacts(&nodes, &node_body, &faces, &face_body, 1.0).is_empty());
    }

    #[test]
    fn tolerance_gates_detection() {
        let nodes = vec![Point::new([0.5, 1.0])];
        let node_body = vec![1];
        let faces = vec![face(0.0, 0.0)]; // top at y = 0.1, node 0.9 above
        let face_body = vec![0];
        assert!(find_node_face_contacts(&nodes, &node_body, &faces, &face_body, 0.5).is_empty());
        assert_eq!(find_node_face_contacts(&nodes, &node_body, &faces, &face_body, 0.95).len(), 1);
    }

    #[test]
    fn penetrating_node_reports_zero_distance() {
        let nodes = vec![Point::new([0.5, 0.05])];
        let node_body = vec![1];
        let faces = vec![face(0.0, 0.0)];
        let face_body = vec![0];
        let hits = find_node_face_contacts(&nodes, &node_body, &faces, &face_body, 0.1);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].dist2, 0.0, "inside the face box");
    }

    #[test]
    fn matches_bruteforce_on_grid_of_faces() {
        let mut faces = Vec::new();
        let mut face_body = Vec::new();
        for i in 0..10 {
            for j in 0..10 {
                faces.push(face(i as f64 * 1.5, j as f64 * 1.5));
                face_body.push(0);
            }
        }
        let nodes: Vec<Point<2>> =
            (0..40).map(|i| Point::new([i as f64 * 0.37, (i % 7) as f64 * 1.9])).collect();
        let node_body = vec![1u16; nodes.len()];
        let tol = 0.3;
        let fast = find_node_face_contacts(&nodes, &node_body, &faces, &face_body, tol);
        let mut brute = Vec::new();
        for (n, p) in nodes.iter().enumerate() {
            for (f, b) in faces.iter().enumerate() {
                let d2 = b.dist2_to_point(p);
                if d2 <= tol * tol {
                    brute.push(NodeFaceContact { node: n as u32, face: f as u32, dist2: d2 });
                }
            }
        }
        assert_eq!(fast, brute);
    }
}
