//! Rank-exchange simulation: materialize the parallel global search.
//!
//! [`crate::global_search`] computes *where* each surface element must be
//! shipped; this module materializes the result as per-rank inboxes and
//! runs the per-rank local search exactly as the parallel algorithm would
//! — each rank searches its **owned** elements against owned + received
//! elements. This is how the test suite verifies the paper's central
//! correctness claim end-to-end: **the distributed search detects exactly
//! the same contact pairs as a serial search over the whole surface**, for
//! any complete filter.

use crate::filter::GlobalFilter;
use crate::local::{find_contact_pairs, ContactPair};
use crate::search::{global_search, SurfaceElementInfo};
use cip_geom::Aabb;

/// The materialized exchange: for every rank, the elements it receives
/// from other ranks.
#[derive(Debug, Clone)]
pub struct Exchange {
    /// `inbox[r]` = indices of elements shipped *to* rank `r` (sorted).
    pub inbox: Vec<Vec<u32>>,
}

impl Exchange {
    /// Total number of shipments (equals the NRemote metric).
    pub fn total_shipments(&self) -> u64 {
        self.inbox.iter().map(|v| v.len() as u64).sum()
    }
}

/// Ships every element to the remote ranks selected by `filter`, with the
/// element boxes inflated by the capture `tolerance` — an element must
/// reach every rank whose territory it could touch *within the capture
/// distance*, exactly as the local search will test.
pub fn build_exchange<const D: usize, F: GlobalFilter<D> + Sync>(
    elements: &[SurfaceElementInfo<D>],
    filter: &F,
    tolerance: f64,
) -> Exchange {
    let inflated: Vec<SurfaceElementInfo<D>> = elements
        .iter()
        .map(|e| SurfaceElementInfo { bbox: e.bbox.inflate(tolerance), owner: e.owner })
        .collect();
    let plans = global_search(&inflated, filter);
    let mut inbox = vec![Vec::new(); filter.num_parts()];
    for (e, plan) in plans.iter().enumerate() {
        for &r in plan {
            inbox[r as usize].push(e as u32);
        }
    }
    Exchange { inbox }
}

/// Runs the full distributed contact-detection step and returns the union
/// of every rank's locally detected cross-body pairs (as *global* element
/// index pairs, deduplicated and sorted).
///
/// Each rank `r` searches its owned elements plus its inbox. For any
/// **space-covering** descriptor (RCB regions, decision-tree leaf
/// regions) or for per-part element-box descriptors, every serial pair is
/// guaranteed to be seen by at least one rank: the point where the two
/// inflated boxes meet lies in some rank's territory, and both elements
/// are shipped there (or owned there).
pub fn distributed_contact_pairs<const D: usize, F: GlobalFilter<D> + Sync>(
    elements: &[SurfaceElementInfo<D>],
    bodies: &[u16],
    filter: &F,
    tolerance: f64,
) -> Vec<ContactPair> {
    assert_eq!(elements.len(), bodies.len());
    let exchange = build_exchange(elements, filter, tolerance);
    let mut all: Vec<ContactPair> = Vec::new();
    for r in 0..filter.num_parts() as u32 {
        // Local element set: owned + received, with their global ids.
        let mut local_ids: Vec<u32> =
            (0..elements.len() as u32).filter(|&e| elements[e as usize].owner == r).collect();
        local_ids.extend_from_slice(&exchange.inbox[r as usize]);

        let boxes: Vec<Aabb<D>> = local_ids.iter().map(|&e| elements[e as usize].bbox).collect();
        let body: Vec<u16> = local_ids.iter().map(|&e| bodies[e as usize]).collect();
        for p in find_contact_pairs(&boxes, &body, tolerance) {
            let (ga, gb) = (local_ids[p.a as usize], local_ids[p.b as usize]);
            let pair =
                if ga < gb { ContactPair { a: ga, b: gb } } else { ContactPair { a: gb, b: ga } };
            all.push(pair);
        }
    }
    all.sort_unstable();
    all.dedup();
    all
}

/// The serial reference: search the whole surface on one rank.
pub fn serial_contact_pairs<const D: usize>(
    elements: &[SurfaceElementInfo<D>],
    bodies: &[u16],
    tolerance: f64,
) -> Vec<ContactPair> {
    let boxes: Vec<Aabb<D>> = elements.iter().map(|e| e.bbox).collect();
    find_contact_pairs(&boxes, bodies, tolerance)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::BboxFilter;
    use cip_geom::Point;

    /// Two rows of unit boxes facing each other across a small gap, split
    /// among `k` ranks along x.
    fn facing_rows(k: usize, n: usize) -> (Vec<SurfaceElementInfo<2>>, Vec<u16>) {
        let mut elements = Vec::new();
        let mut bodies = Vec::new();
        for i in 0..n {
            let x = i as f64;
            let owner = (i * k / n) as u32;
            elements.push(SurfaceElementInfo {
                bbox: Aabb::new(Point::new([x, 0.0]), Point::new([x + 1.0, 1.0])),
                owner,
            });
            bodies.push(0);
            elements.push(SurfaceElementInfo {
                bbox: Aabb::new(Point::new([x, 1.2]), Point::new([x + 1.0, 2.2])),
                owner,
            });
            bodies.push(1);
        }
        (elements, bodies)
    }

    fn box_filter(elements: &[SurfaceElementInfo<2>], k: usize) -> BboxFilter<2> {
        let boxes: Vec<(u32, cip_geom::Aabb<2>)> =
            elements.iter().map(|e| (e.owner, e.bbox)).collect();
        BboxFilter::from_boxes(&boxes, k)
    }

    #[test]
    fn distributed_equals_serial_detection() {
        let (elements, bodies) = facing_rows(4, 16);
        let filter = box_filter(&elements, 4);
        let serial = serial_contact_pairs(&elements, &bodies, 0.3);
        let distributed = distributed_contact_pairs(&elements, &bodies, &filter, 0.3);
        assert!(!serial.is_empty(), "facing rows must contact");
        assert_eq!(distributed, serial);
    }

    #[test]
    fn distributed_equals_serial_with_rcb_regions() {
        use cip_geom::RcbTree;
        let (elements, bodies) = facing_rows(4, 16);
        // Region filter over the element centers, ownership = RCB part.
        let pts: Vec<Point<2>> = elements.iter().map(|e| e.bbox.center()).collect();
        let weights = vec![1.0; pts.len()];
        let (tree, labels) = RcbTree::build(&pts, &weights, 4);
        let relabeled: Vec<SurfaceElementInfo<2>> = elements
            .iter()
            .zip(labels.iter())
            .map(|(e, &p)| SurfaceElementInfo { bbox: e.bbox, owner: p })
            .collect();
        let filter = crate::filter::RcbRegionFilter::new(&tree);
        let serial = serial_contact_pairs(&relabeled, &bodies, 0.3);
        let distributed = distributed_contact_pairs(&relabeled, &bodies, &filter, 0.3);
        assert_eq!(distributed, serial);
    }

    #[test]
    fn exchange_totals_match_n_remote_at_zero_tolerance() {
        let (elements, _) = facing_rows(3, 9);
        let filter = box_filter(&elements, 3);
        let ex = build_exchange(&elements, &filter, 0.0);
        assert_eq!(ex.total_shipments(), crate::search::n_remote(&elements, &filter));
    }

    #[test]
    fn single_rank_needs_no_exchange() {
        let (elements, bodies) = facing_rows(1, 6);
        let filter = box_filter(&elements, 1);
        let ex = build_exchange(&elements, &filter, 0.3);
        assert_eq!(ex.total_shipments(), 0);
        let serial = serial_contact_pairs(&elements, &bodies, 0.3);
        let distributed = distributed_contact_pairs(&elements, &bodies, &filter, 0.3);
        assert_eq!(distributed, serial);
    }
}
