//! Global-search filters: per-subdomain geometric descriptors.

use cip_dtree::DecisionTree;
use cip_geom::{Aabb, RcbTree};

/// A per-subdomain geometric descriptor used to answer: *which subdomains
/// might own contact points inside this box?*
///
/// The quality of a filter is measured by how few false positives it
/// produces (reported parts that hold no nearby contact point); its
/// correctness contract is to never produce a false negative — every part
/// owning a contact point inside the query box must be reported.
pub trait GlobalFilter<const D: usize> {
    /// Collects the candidate parts for the query box into `out`
    /// (sorted, deduplicated).
    fn candidate_parts(&self, query: &Aabb<D>, out: &mut Vec<u32>);

    /// Number of parts this filter describes.
    fn num_parts(&self) -> usize;
}

/// The classical filter: each subdomain is described by the bounding box of
/// its contact points. Cheap to build and broadcast (one box per part) but
/// prone to false positives whenever subdomain boxes overlap — which is
/// exactly what happens when the mesh partitioner ignores geometry.
#[derive(Debug, Clone)]
pub struct BboxFilter<const D: usize> {
    boxes: Vec<Aabb<D>>,
}

impl<const D: usize> BboxFilter<D> {
    /// Builds the filter from points and their part assignment.
    pub fn from_points(
        points: &[cip_geom::Point<D>],
        assignment: &[u32],
        num_parts: usize,
    ) -> Self {
        assert_eq!(points.len(), assignment.len());
        let mut boxes = vec![Aabb::empty(); num_parts];
        for (p, &part) in points.iter().zip(assignment.iter()) {
            boxes[part as usize].grow(p);
        }
        Self { boxes }
    }

    /// Builds the filter from per-part element boxes (part, box) pairs.
    pub fn from_boxes(boxes: &[(u32, Aabb<D>)], num_parts: usize) -> Self {
        let mut merged = vec![Aabb::empty(); num_parts];
        for &(part, b) in boxes {
            merged[part as usize] = merged[part as usize].union(&b);
        }
        Self { boxes: merged }
    }

    /// The descriptor box of a part.
    pub fn part_box(&self, part: u32) -> &Aabb<D> {
        &self.boxes[part as usize]
    }
}

impl<const D: usize> GlobalFilter<D> for BboxFilter<D> {
    fn candidate_parts(&self, query: &Aabb<D>, out: &mut Vec<u32>) {
        out.clear();
        for (part, b) in self.boxes.iter().enumerate() {
            if b.intersects(query) {
                out.push(part as u32);
            }
        }
    }

    fn num_parts(&self) -> usize {
        self.boxes.len()
    }
}

/// The paper's filter: the decision tree over contact points. A part's
/// territory is the union of the leaf boxes labeled with it, which
/// converges to the true subdomain shape as leaves shrink.
#[derive(Debug, Clone)]
pub struct DtreeFilter<'a, const D: usize> {
    tree: &'a DecisionTree<D>,
    num_parts: usize,
    tight: bool,
}

impl<'a, const D: usize> DtreeFilter<'a, D> {
    /// Wraps an induced search tree with the paper's leaf-*region*
    /// semantics: a leaf answers whenever the query box reaches its
    /// region.
    pub fn new(tree: &'a DecisionTree<D>, num_parts: usize) -> Self {
        Self { tree, num_parts, tight: false }
    }

    /// Wraps a search tree with *tight-leaf* semantics: a leaf answers
    /// only when the query intersects the bounding box of the points that
    /// fell into it. Strictly fewer false positives than [`Self::new`],
    /// still complete (see [`DecisionTree::query_box_tight`]).
    pub fn tight(tree: &'a DecisionTree<D>, num_parts: usize) -> Self {
        Self { tree, num_parts, tight: true }
    }
}

impl<const D: usize> GlobalFilter<D> for DtreeFilter<'_, D> {
    fn candidate_parts(&self, query: &Aabb<D>, out: &mut Vec<u32>) {
        if self.tight {
            self.tree.query_box_tight(query, out);
        } else {
            self.tree.query_box(query, out);
        }
    }

    fn num_parts(&self) -> usize {
        self.num_parts
    }
}

/// Region filter for an RCB decomposition: each part's territory is its
/// (axis-parallel) RCB region. Never under-approximates.
#[derive(Debug, Clone)]
pub struct RcbRegionFilter<'a, const D: usize> {
    tree: &'a RcbTree<D>,
}

impl<'a, const D: usize> RcbRegionFilter<'a, D> {
    /// Wraps an RCB cut tree.
    pub fn new(tree: &'a RcbTree<D>) -> Self {
        Self { tree }
    }
}

impl<const D: usize> GlobalFilter<D> for RcbRegionFilter<'_, D> {
    fn candidate_parts(&self, query: &Aabb<D>, out: &mut Vec<u32>) {
        self.tree.query_box(query, out);
    }

    fn num_parts(&self) -> usize {
        self.tree.num_parts()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cip_dtree::{induce, DtreeConfig};
    use cip_geom::Point;

    fn two_cluster_points() -> (Vec<Point<2>>, Vec<u32>) {
        let mut pts = Vec::new();
        let mut asg = Vec::new();
        for i in 0..5 {
            pts.push(Point::new([i as f64, 0.0]));
            asg.push(0);
            pts.push(Point::new([i as f64 + 100.0, 0.0]));
            asg.push(1);
        }
        (pts, asg)
    }

    #[test]
    fn bbox_filter_reports_overlapping_parts() {
        let (pts, asg) = two_cluster_points();
        let f = BboxFilter::from_points(&pts, &asg, 2);
        let mut out = Vec::new();
        f.candidate_parts(&Aabb::new(Point::new([1.0, -1.0]), Point::new([2.0, 1.0])), &mut out);
        assert_eq!(out, vec![0]);
        f.candidate_parts(
            &Aabb::new(Point::new([-10.0, -1.0]), Point::new([200.0, 1.0])),
            &mut out,
        );
        assert_eq!(out, vec![0, 1]);
        f.candidate_parts(&Aabb::new(Point::new([50.0, -1.0]), Point::new([60.0, 1.0])), &mut out);
        assert!(out.is_empty(), "gap between clusters is nobody's territory");
    }

    #[test]
    fn bbox_filter_never_misses_owner() {
        let (pts, asg) = two_cluster_points();
        let f = BboxFilter::from_points(&pts, &asg, 2);
        let mut out = Vec::new();
        for (p, &part) in pts.iter().zip(asg.iter()) {
            f.candidate_parts(&Aabb::from_point(*p), &mut out);
            assert!(out.contains(&part));
        }
    }

    #[test]
    fn dtree_filter_is_tighter_than_bbox_on_interleaved_parts() {
        // Two parts interleaved along y but separated along x per stripe:
        // bounding boxes of both parts cover everything; the tree separates.
        let mut pts = Vec::new();
        let mut asg = Vec::new();
        for i in 0..8 {
            for j in 0..8 {
                pts.push(Point::new([i as f64, j as f64]));
                asg.push(u32::from(i >= 4) ^ (u32::from(j >= 4)));
            }
        }
        let tree = induce(&pts, &asg, 2, &DtreeConfig::search_tree());
        let df = DtreeFilter::new(&tree, 2);
        let bf = BboxFilter::from_points(&pts, &asg, 2);
        // Query a quadrant interior: single part under the tree, both under
        // bounding boxes.
        let q = Aabb::new(Point::new([0.5, 0.5]), Point::new([2.5, 2.5]));
        let mut dt_out = Vec::new();
        let mut bb_out = Vec::new();
        df.candidate_parts(&q, &mut dt_out);
        bf.candidate_parts(&q, &mut bb_out);
        assert_eq!(dt_out.len(), 1);
        assert_eq!(bb_out.len(), 2);
    }

    #[test]
    fn rcb_region_filter_covers_all_space() {
        let (pts, asg) = two_cluster_points();
        let _ = asg;
        let wts = vec![1.0; pts.len()];
        let (tree, _) = RcbTree::build(&pts, &wts, 2);
        let f = RcbRegionFilter::new(&tree);
        let mut out = Vec::new();
        // Even a box in the empty gap belongs to someone's region.
        f.candidate_parts(&Aabb::new(Point::new([50.0, -1.0]), Point::new([51.0, 1.0])), &mut out);
        assert!(!out.is_empty());
        assert_eq!(f.num_parts(), 2);
    }

    #[test]
    fn from_boxes_merges_per_part() {
        let boxes = vec![
            (0u32, Aabb::new(Point::new([0.0, 0.0]), Point::new([1.0, 1.0]))),
            (0u32, Aabb::new(Point::new([2.0, 0.0]), Point::new([3.0, 1.0]))),
            (1u32, Aabb::new(Point::new([10.0, 0.0]), Point::new([11.0, 1.0]))),
        ];
        let f = BboxFilter::from_boxes(&boxes, 2);
        assert_eq!(f.part_box(0).max[0], 3.0);
        assert_eq!(f.part_box(1).min[0], 10.0);
    }
}
