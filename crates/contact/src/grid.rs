//! Uniform-grid broad phase.
//!
//! A spatial hash over axis-aligned boxes: each box is registered in every
//! cell it overlaps; box-vs-set queries gather the candidates from the
//! query's cells. This is the serial "volume partitioning / spatial
//! indexing" acceleration the paper mentions for on-processor global
//! search, and the test suite's ground-truth oracle for filter
//! completeness.
//!
//! The cell table is a flat CSR built in one pass — sorted cell keys, an
//! offset array, and one contiguous entry array — instead of a
//! `HashMap<[i64; D], Vec<u32>>` (one heap allocation per occupied cell
//! and pointer-chasing per probe). Queries deduplicate the candidates with
//! a visited stamp in a caller-held [`GridScratch`] rather than
//! sort+dedup, so a query is `O(cells touched + candidates)` with no
//! allocation in steady state.

use cip_geom::Aabb;

/// A uniform spatial-hash grid over `D`-dimensional boxes.
#[derive(Debug, Clone)]
pub struct UniformGrid<const D: usize> {
    cell: f64,
    /// Sorted keys of the occupied cells (lexicographic `[i64; D]` order).
    keys: Vec<[i64; D]>,
    /// CSR offsets into `entries`, one slot per key plus the end sentinel.
    offsets: Vec<u32>,
    /// Box indices per occupied cell, concatenated in key order.
    entries: Vec<u32>,
    boxes: Vec<Aabb<D>>,
}

/// Reusable per-thread query scratch: a visited stamp per box plus the
/// current epoch. Obtain with [`UniformGrid::scratch`]; queries only read
/// the grid, so each worker thread holds its own scratch.
#[derive(Debug, Clone)]
pub struct GridScratch {
    stamp: Vec<u32>,
    epoch: u32,
}

impl GridScratch {
    /// Starts a new dedup epoch, refilling only on epoch wrap-around.
    fn next_epoch(&mut self) -> u32 {
        if self.epoch == u32::MAX {
            self.stamp.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
        self.epoch
    }
}

impl<const D: usize> UniformGrid<D> {
    /// Builds a grid over `boxes` with the given cell size.
    ///
    /// # Panics
    /// Panics if `cell_size` is not finite and positive.
    pub fn build(boxes: &[Aabb<D>], cell_size: f64) -> Self {
        assert!(cell_size.is_finite() && cell_size > 0.0, "cell size must be positive");
        // One pass: collect (cell key, box) pairs, sort, then run-length
        // encode the keys into CSR.
        let mut pairs: Vec<([i64; D], u32)> = Vec::new();
        for (i, b) in boxes.iter().enumerate() {
            if b.is_empty() {
                continue;
            }
            for_each_cell(cell_size, b, |key| pairs.push((key, i as u32)));
        }
        pairs.sort_unstable();

        let mut keys = Vec::new();
        let mut offsets = vec![0u32];
        let mut entries = Vec::with_capacity(pairs.len());
        for (key, idx) in pairs {
            if keys.last() != Some(&key) {
                keys.push(key);
                offsets.push(entries.len() as u32);
            }
            entries.push(idx);
            *offsets.last_mut().unwrap() = entries.len() as u32;
        }
        Self { cell: cell_size, keys, offsets, entries, boxes: boxes.to_vec() }
    }

    /// Builds a grid with a cell size derived from the average *positive*
    /// box extent (a reasonable default for roughly uniform surface
    /// elements). Degenerate inputs — point boxes, or boxes flat in every
    /// dimension — fall back to a cell size derived from the overall
    /// domain extent, so they can no longer produce a near-zero cell size
    /// (and with it an astronomic cell count per query).
    pub fn build_auto(boxes: &[Aabb<D>]) -> Self {
        let mut sum = 0.0;
        let mut count = 0usize;
        let mut domain = Aabb::empty();
        for b in boxes {
            if b.is_empty() {
                continue;
            }
            domain = domain.union(b);
            for d in 0..D {
                let e = b.extent(d);
                if e > 0.0 {
                    sum += e;
                    count += 1;
                }
            }
        }
        let cell = if count > 0 {
            2.0 * (sum / count as f64)
        } else if !domain.is_empty() {
            // Point-like boxes only: aim for ~one box per cell by volume.
            let ext = (0..D).map(|d| domain.extent(d)).fold(0.0f64, f64::max);
            let per_axis = (boxes.len() as f64).powf(1.0 / D as f64).max(1.0);
            if ext > 0.0 {
                ext / per_axis
            } else {
                1.0 // all boxes coincide in a single point
            }
        } else {
            1.0 // no non-empty boxes at all
        };
        Self::build(boxes, cell.max(1e-12))
    }

    /// A query scratch sized for this grid.
    pub fn scratch(&self) -> GridScratch {
        GridScratch { stamp: vec![0; self.boxes.len()], epoch: 0 }
    }

    /// Collects the indices of boxes whose cells overlap the query's cells
    /// and which actually intersect the (inflated) query box.
    ///
    /// The output order is the grid's visit order, not sorted; callers
    /// needing a canonical order sort afterwards. `scratch` must come from
    /// [`Self::scratch`] on this grid (or a grid with at least as many
    /// boxes).
    pub fn query(&self, query: &Aabb<D>, scratch: &mut GridScratch, out: &mut Vec<u32>) {
        out.clear();
        if query.is_empty() || self.keys.is_empty() {
            return;
        }
        debug_assert!(scratch.stamp.len() >= self.boxes.len(), "scratch from a smaller grid");
        let epoch = scratch.next_epoch();
        for_each_cell(self.cell, query, |key| {
            if let Ok(c) = self.keys.binary_search(&key) {
                let (lo, hi) = (self.offsets[c] as usize, self.offsets[c + 1] as usize);
                for &i in &self.entries[lo..hi] {
                    if scratch.stamp[i as usize] != epoch {
                        scratch.stamp[i as usize] = epoch;
                        if self.boxes[i as usize].intersects(query) {
                            out.push(i);
                        }
                    }
                }
            }
        });
    }

    /// Number of boxes registered.
    pub fn len(&self) -> usize {
        self.boxes.len()
    }

    /// Whether the grid holds no boxes.
    pub fn is_empty(&self) -> bool {
        self.boxes.is_empty()
    }
}

/// Visits every grid cell key overlapped by box `b` (odometer iteration
/// over the D-dimensional cell range).
fn for_each_cell<const D: usize>(cell: f64, b: &Aabb<D>, mut f: impl FnMut([i64; D])) {
    let key_of = |coord: f64| (coord / cell).floor() as i64;
    let mut lo = [0i64; D];
    let mut hi = [0i64; D];
    for d in 0..D {
        lo[d] = key_of(b.min[d]);
        hi[d] = key_of(b.max[d]);
    }
    let mut key = lo;
    loop {
        f(key);
        let mut d = 0;
        loop {
            if d == D {
                return;
            }
            key[d] += 1;
            if key[d] <= hi[d] {
                break;
            }
            key[d] = lo[d];
            d += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cip_geom::Point;

    fn unit_box(x: f64, y: f64) -> Aabb<2> {
        Aabb::new(Point::new([x, y]), Point::new([x + 1.0, y + 1.0]))
    }

    fn query_sorted<const D: usize>(g: &UniformGrid<D>, q: &Aabb<D>, out: &mut Vec<u32>) {
        let mut scratch = g.scratch();
        g.query(q, &mut scratch, out);
        out.sort_unstable();
    }

    #[test]
    fn finds_intersecting_boxes_only() {
        let boxes = vec![unit_box(0.0, 0.0), unit_box(5.0, 5.0), unit_box(0.5, 0.5)];
        let g = UniformGrid::build(&boxes, 1.0);
        let mut out = Vec::new();
        query_sorted(&g, &unit_box(0.2, 0.2), &mut out);
        assert_eq!(out, vec![0, 2]);
        query_sorted(&g, &unit_box(100.0, 100.0), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn matches_bruteforce_on_random_layout() {
        // Deterministic pseudo-random boxes.
        let mut state = 99u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 1000) as f64 / 10.0
        };
        let boxes: Vec<Aabb<2>> = (0..200)
            .map(|_| {
                let x = next();
                let y = next();
                Aabb::new(Point::new([x, y]), Point::new([x + 1.0 + next() * 0.05, y + 1.0]))
            })
            .collect();
        let g = UniformGrid::build_auto(&boxes);
        let mut scratch = g.scratch();
        let mut out = Vec::new();
        for q in boxes.iter().step_by(7) {
            g.query(q, &mut scratch, &mut out);
            out.sort_unstable();
            let brute: Vec<u32> = boxes
                .iter()
                .enumerate()
                .filter(|(_, b)| b.intersects(q))
                .map(|(i, _)| i as u32)
                .collect();
            assert_eq!(out, brute);
        }
    }

    #[test]
    fn query_yields_no_duplicates_without_sorting() {
        // A big box spanning many cells, queried by a box that also spans
        // many cells: the stamp dedup must suppress the repeats.
        let boxes =
            vec![Aabb::new(Point::new([0.0, 0.0]), Point::new([10.0, 10.0])), unit_box(2.0, 2.0)];
        let g = UniformGrid::build(&boxes, 1.0);
        let mut scratch = g.scratch();
        let mut out = Vec::new();
        g.query(&Aabb::new(Point::new([1.0, 1.0]), Point::new([9.0, 9.0])), &mut scratch, &mut out);
        let mut sorted = out.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(out.len(), sorted.len(), "duplicates in {out:?}");
        assert_eq!(sorted, vec![0, 1]);
    }

    #[test]
    fn scratch_reuse_across_queries_matches_fresh_scratch() {
        let boxes: Vec<Aabb<2>> =
            (0..50).map(|i| unit_box((i % 10) as f64, (i / 10) as f64)).collect();
        let g = UniformGrid::build_auto(&boxes);
        let mut reused = g.scratch();
        let mut a = Vec::new();
        let mut b = Vec::new();
        for q in boxes.iter().step_by(3) {
            g.query(q, &mut reused, &mut a);
            g.query(q, &mut g.scratch(), &mut b);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn empty_grid_and_empty_query() {
        let g = UniformGrid::<2>::build(&[], 1.0);
        assert!(g.is_empty());
        let mut out = vec![1, 2, 3];
        g.query(&Aabb::empty(), &mut g.scratch(), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn build_auto_handles_degenerate_point_boxes() {
        // All-degenerate boxes used to drive the mean extent to ~0 and the
        // cell size with it; a query then had to walk billions of cells.
        // Now the cell size comes from the domain extent.
        let boxes: Vec<Aabb<2>> = (0..64)
            .map(|i| Aabb::from_point(Point::new([(i % 8) as f64 * 100.0, (i / 8) as f64 * 100.0])))
            .collect();
        let g = UniformGrid::build_auto(&boxes);
        let mut out = Vec::new();
        let q = Aabb::new(Point::new([-1.0, -1.0]), Point::new([101.0, 101.0]));
        query_sorted(&g, &q, &mut out);
        let brute: Vec<u32> = boxes
            .iter()
            .enumerate()
            .filter(|(_, b)| b.intersects(&q))
            .map(|(i, _)| i as u32)
            .collect();
        assert_eq!(out, brute);

        // All boxes on one single point is fine too.
        let same: Vec<Aabb<2>> = (0..4).map(|_| Aabb::from_point(Point::new([3.0, 3.0]))).collect();
        let g2 = UniformGrid::build_auto(&same);
        query_sorted(&g2, &Aabb::from_point(Point::new([3.0, 3.0])).inflate(0.1), &mut out);
        assert_eq!(out, vec![0, 1, 2, 3]);
    }

    #[test]
    fn three_dimensional_grid() {
        let boxes: Vec<Aabb<3>> = (0..10)
            .map(|i| {
                let x = i as f64 * 2.0;
                Aabb::new(Point::new([x, 0.0, 0.0]), Point::new([x + 1.0, 1.0, 1.0]))
            })
            .collect();
        let g = UniformGrid::build(&boxes, 1.5);
        let mut out = Vec::new();
        query_sorted(
            &g,
            &Aabb::new(Point::new([3.5, 0.0, 0.0]), Point::new([6.5, 1.0, 1.0])),
            &mut out,
        );
        assert_eq!(out, vec![2, 3]);
    }
}
