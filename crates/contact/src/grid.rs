//! Uniform-grid broad phase.
//!
//! A spatial hash over axis-aligned boxes: each box is registered in every
//! cell it overlaps; box-vs-set queries gather the candidates from the
//! query's cells. This is the serial "volume partitioning / spatial
//! indexing" acceleration the paper mentions for on-processor global
//! search, and the test suite's ground-truth oracle for filter
//! completeness.
//!
//! The cell table is a flat CSR built in one pass — sorted cell keys, an
//! offset array, and one contiguous entry array — instead of a
//! `HashMap<[i64; D], Vec<u32>>` (one heap allocation per occupied cell
//! and pointer-chasing per probe). Queries deduplicate the candidates with
//! a visited stamp in a caller-held [`GridScratch`] rather than
//! sort+dedup, so a query is `O(cells touched + candidates)` with no
//! allocation in steady state.

use cip_geom::Aabb;

/// A uniform spatial-hash grid over `D`-dimensional boxes.
#[derive(Debug, Clone)]
pub struct UniformGrid<const D: usize> {
    cell: f64,
    /// Sorted keys of the occupied cells (lexicographic `[i64; D]` order).
    keys: Vec<[i64; D]>,
    /// CSR offsets into `entries`, one slot per key plus the end sentinel.
    offsets: Vec<u32>,
    /// Box indices per occupied cell, concatenated in key order.
    entries: Vec<u32>,
    boxes: Vec<Aabb<D>>,
    /// Sorted `(cell key, box)` pairs, retained so [`Self::update`] can
    /// patch and re-sort them instead of regenerating from scratch.
    pairs: Vec<([i64; D], u32)>,
    /// Cell range `[lo, hi]` per box at the last (re)build; empty boxes
    /// hold `EMPTY_RANGE`.
    ranges: Vec<([i64; D], [i64; D])>,
    /// Epoch stamp per box: `stamp[i] == epoch` marks a box whose cells
    /// changed in the current update (see `state`).
    stamp: Vec<u32>,
    /// Valid when stamped: how the box's cell set changed this update.
    state: Vec<BoxChange>,
    /// Valid when stamped `Translated`: key delta to apply.
    delta: Vec<[i64; D]>,
    /// Update epoch (bumped per `update`, stamps cleared on wrap).
    epoch: u32,
}

/// How one box's cell set changed in an [`UniformGrid::update`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BoxChange {
    /// Same cell-range shape, shifted by a constant key delta: existing
    /// pairs are translated in place.
    Translated,
    /// Shape changed (or the box appeared/vanished): stale pairs are
    /// tombstoned and fresh ones appended.
    Refreshed,
}

/// Outcome of an [`UniformGrid::update`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GridUpdate {
    /// The previous step's sorted pairs were patched in place:
    /// `translated` boxes had their keys shifted, `refreshed` boxes were
    /// tombstoned and re-inserted, and the mostly-sorted array was fixed
    /// up by an adaptive insertion sort.
    Incremental {
        /// Boxes whose cell range kept its shape and merely shifted.
        translated: usize,
        /// Boxes whose cell range changed shape (tombstone + re-insert).
        refreshed: usize,
    },
    /// The grid was rebuilt from scratch — the box count changed, some
    /// box moved by more than one cell, or too many boxes changed shape
    /// for patching to beat regeneration.
    FullRebuild,
}

/// Tombstone key for stale pairs: sorts after every real key, so dead
/// pairs cluster at the tail and are truncated after the re-sort.
const fn tombstone<const D: usize>() -> [i64; D] {
    [i64::MAX; D]
}

/// Sentinel range of an empty (skipped) box.
const fn empty_range<const D: usize>() -> ([i64; D], [i64; D]) {
    ([i64::MAX; D], [i64::MIN; D])
}

/// Reusable per-thread query scratch: a visited stamp per box plus the
/// current epoch. Obtain with [`UniformGrid::scratch`]; queries only read
/// the grid, so each worker thread holds its own scratch.
#[derive(Debug, Clone)]
pub struct GridScratch {
    stamp: Vec<u32>,
    epoch: u32,
}

impl GridScratch {
    /// Starts a new dedup epoch, refilling only on epoch wrap-around.
    fn next_epoch(&mut self) -> u32 {
        if self.epoch == u32::MAX {
            self.stamp.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
        self.epoch
    }
}

impl<const D: usize> UniformGrid<D> {
    /// Builds a grid over `boxes` with the given cell size.
    ///
    /// # Panics
    /// Panics if `cell_size` is not finite and positive.
    pub fn build(boxes: &[Aabb<D>], cell_size: f64) -> Self {
        assert!(cell_size.is_finite() && cell_size > 0.0, "cell size must be positive");
        let mut g = Self {
            cell: cell_size,
            keys: Vec::new(),
            offsets: Vec::new(),
            entries: Vec::new(),
            boxes: boxes.to_vec(),
            pairs: Vec::new(),
            ranges: Vec::new(),
            stamp: Vec::new(),
            state: Vec::new(),
            delta: Vec::new(),
            epoch: 0,
        };
        g.full_rebuild();
        g
    }

    /// Regenerates pairs, ranges and the CSR table from `self.boxes`.
    fn full_rebuild(&mut self) {
        let (boxes, pairs, ranges) = (&self.boxes, &mut self.pairs, &mut self.ranges);
        pairs.clear();
        ranges.clear();
        for (i, b) in boxes.iter().enumerate() {
            if b.is_empty() {
                ranges.push(empty_range::<D>());
                continue;
            }
            let r = cell_range(self.cell, b);
            ranges.push(r);
            for_each_key(r.0, r.1, |key| pairs.push((key, i as u32)));
        }
        pairs.sort_unstable();
        self.rebuild_csr();
    }

    /// Run-length encodes the sorted `pairs` into the CSR table, reusing
    /// the existing vectors.
    fn rebuild_csr(&mut self) {
        self.keys.clear();
        self.entries.clear();
        self.offsets.clear();
        self.offsets.push(0);
        for &(key, idx) in &self.pairs {
            if self.keys.last() != Some(&key) {
                self.keys.push(key);
                self.offsets.push(self.entries.len() as u32);
            }
            self.entries.push(idx);
            if let Some(end) = self.offsets.last_mut() {
                *end = self.entries.len() as u32;
            }
        }
        debug_assert_eq!(self.offsets.len(), self.keys.len() + 1);
    }

    /// Moves the grid to `boxes` — the same element set one time step
    /// later — patching the previous build instead of regenerating it
    /// when the motion is small (DESIGN.md §6d; ROADMAP carried debt).
    ///
    /// Incremental path: boxes whose cell range kept its shape get their
    /// keys translated in place; boxes whose range changed shape are
    /// tombstoned and re-inserted; the mostly-sorted pair array is fixed
    /// by an adaptive insertion sort (bailing to `sort_unstable` if the
    /// disorder explodes) and the CSR table re-encoded. Falls back to a
    /// full rebuild when the box count changes, when any box moved more
    /// than one cell on any axis, or when more than 1/8 of the boxes
    /// changed shape. The cell size is retained either way; queries are
    /// exact for any cell size, so results never depend on which path
    /// ran.
    pub fn update(&mut self, boxes: &[Aabb<D>]) -> GridUpdate {
        if boxes.len() != self.boxes.len() {
            self.boxes.clear();
            self.boxes.extend_from_slice(boxes);
            self.full_rebuild();
            return GridUpdate::FullRebuild;
        }
        let n = boxes.len();
        if self.epoch == u32::MAX {
            self.stamp.clear();
            self.epoch = 0;
        }
        self.epoch += 1;
        let epoch = self.epoch;
        self.stamp.resize(n, 0);
        self.state.resize(n, BoxChange::Refreshed);
        self.delta.resize(n, [0; D]);

        // Classify every box against its previous cell range.
        let mut translated = 0usize;
        let mut refreshed = 0usize;
        for (i, b) in boxes.iter().enumerate() {
            let old = self.ranges[i];
            let new = if b.is_empty() { empty_range::<D>() } else { cell_range(self.cell, b) };
            if old == new {
                continue;
            }
            let (old_empty, new_empty) = (old == empty_range::<D>(), new == empty_range::<D>());
            if !old_empty && !new_empty {
                // Displacement gate: more than one cell of motion on any
                // axis and patching loses to regeneration (the insertion
                // sort would degenerate into long-distance shuffles).
                let far = (0..D)
                    .any(|d| (new.0[d] - old.0[d]).abs() > 1 || (new.1[d] - old.1[d]).abs() > 1);
                if far {
                    self.boxes.clear();
                    self.boxes.extend_from_slice(boxes);
                    self.full_rebuild();
                    return GridUpdate::FullRebuild;
                }
            }
            let same_shape = !old_empty
                && !new_empty
                && (0..D).all(|d| new.1[d] - new.0[d] == old.1[d] - old.0[d]);
            self.stamp[i] = epoch;
            if same_shape {
                self.state[i] = BoxChange::Translated;
                let mut dl = [0i64; D];
                for (slot, (n0, o0)) in dl.iter_mut().zip(new.0.iter().zip(old.0.iter())) {
                    *slot = n0 - o0;
                }
                self.delta[i] = dl;
                translated += 1;
            } else {
                self.state[i] = BoxChange::Refreshed;
                refreshed += 1;
            }
            self.ranges[i] = new;
        }
        // Too many shape changes: tombstone + append would churn most of
        // the array anyway.
        if refreshed * 8 > n.max(8) {
            self.boxes.clear();
            self.boxes.extend_from_slice(boxes);
            self.full_rebuild();
            return GridUpdate::FullRebuild;
        }
        self.boxes.clear();
        self.boxes.extend_from_slice(boxes);
        if translated == 0 && refreshed == 0 {
            return GridUpdate::Incremental { translated: 0, refreshed: 0 };
        }

        // Patch pass: translate surviving keys, tombstone stale ones.
        for (key, idx) in self.pairs.iter_mut() {
            let i = *idx as usize;
            if self.stamp[i] != epoch {
                continue;
            }
            match self.state[i] {
                BoxChange::Translated => {
                    for (slot, d) in key.iter_mut().zip(self.delta[i].iter()) {
                        *slot += d;
                    }
                }
                BoxChange::Refreshed => *key = tombstone::<D>(),
            }
        }
        // Fresh pairs for the refreshed boxes.
        {
            let (ranges, stamp, state, pairs) =
                (&self.ranges, &self.stamp, &self.state, &mut self.pairs);
            for i in 0..n {
                if stamp[i] == epoch
                    && state[i] == BoxChange::Refreshed
                    && ranges[i] != empty_range::<D>()
                {
                    for_each_key(ranges[i].0, ranges[i].1, |key| pairs.push((key, i as u32)));
                }
            }
        }
        // Mostly-sorted fix-up; bail to a full sort if the shift budget
        // explodes (heavily sheared motion).
        let budget = self.pairs.len() * 8 + 64;
        if !nearly_sorted_insertion(&mut self.pairs, budget) {
            self.pairs.sort_unstable();
        }
        // Tombstones sorted to the tail; cut them off.
        let live = self.pairs.partition_point(|&(k, _)| k != tombstone::<D>());
        self.pairs.truncate(live);
        self.rebuild_csr();
        GridUpdate::Incremental { translated, refreshed }
    }

    /// The grid's cell size.
    pub fn cell_size(&self) -> f64 {
        self.cell
    }

    /// Builds a grid with a cell size derived from the average *positive*
    /// box extent (a reasonable default for roughly uniform surface
    /// elements). Degenerate inputs — point boxes, or boxes flat in every
    /// dimension — fall back to a cell size derived from the overall
    /// domain extent, so they can no longer produce a near-zero cell size
    /// (and with it an astronomic cell count per query).
    pub fn build_auto(boxes: &[Aabb<D>]) -> Self {
        let mut sum = 0.0;
        let mut count = 0usize;
        let mut domain = Aabb::empty();
        for b in boxes {
            if b.is_empty() {
                continue;
            }
            domain = domain.union(b);
            for d in 0..D {
                let e = b.extent(d);
                if e > 0.0 {
                    sum += e;
                    count += 1;
                }
            }
        }
        let cell = if count > 0 {
            2.0 * (sum / count as f64)
        } else if !domain.is_empty() {
            // Point-like boxes only: aim for ~one box per cell by volume.
            let ext = (0..D).map(|d| domain.extent(d)).fold(0.0f64, f64::max);
            let per_axis = (boxes.len() as f64).powf(1.0 / D as f64).max(1.0);
            if ext > 0.0 {
                ext / per_axis
            } else {
                1.0 // all boxes coincide in a single point
            }
        } else {
            1.0 // no non-empty boxes at all
        };
        Self::build(boxes, cell.max(1e-12))
    }

    /// A query scratch sized for this grid.
    pub fn scratch(&self) -> GridScratch {
        GridScratch { stamp: vec![0; self.boxes.len()], epoch: 0 }
    }

    /// Collects the indices of boxes whose cells overlap the query's cells
    /// and which actually intersect the (inflated) query box.
    ///
    /// The output order is the grid's visit order, not sorted; callers
    /// needing a canonical order sort afterwards. `scratch` must come from
    /// [`Self::scratch`] on this grid (or a grid with at least as many
    /// boxes).
    pub fn query(&self, query: &Aabb<D>, scratch: &mut GridScratch, out: &mut Vec<u32>) {
        out.clear();
        if query.is_empty() || self.keys.is_empty() {
            return;
        }
        debug_assert!(scratch.stamp.len() >= self.boxes.len(), "scratch from a smaller grid");
        let epoch = scratch.next_epoch();
        for_each_cell(self.cell, query, |key| {
            if let Ok(c) = self.keys.binary_search(&key) {
                let (lo, hi) = (self.offsets[c] as usize, self.offsets[c + 1] as usize);
                for &i in &self.entries[lo..hi] {
                    if scratch.stamp[i as usize] != epoch {
                        scratch.stamp[i as usize] = epoch;
                        if self.boxes[i as usize].intersects(query) {
                            out.push(i);
                        }
                    }
                }
            }
        });
    }

    /// Number of boxes registered.
    pub fn len(&self) -> usize {
        self.boxes.len()
    }

    /// Whether the grid holds no boxes.
    pub fn is_empty(&self) -> bool {
        self.boxes.is_empty()
    }
}

/// The inclusive cell-key range `[lo, hi]` covered by box `b`.
fn cell_range<const D: usize>(cell: f64, b: &Aabb<D>) -> ([i64; D], [i64; D]) {
    let key_of = |coord: f64| (coord / cell).floor() as i64;
    let mut lo = [0i64; D];
    let mut hi = [0i64; D];
    for d in 0..D {
        lo[d] = key_of(b.min[d]);
        hi[d] = key_of(b.max[d]);
    }
    (lo, hi)
}

/// Visits every key in the inclusive range `[lo, hi]` (odometer iteration
/// over the D-dimensional cell range).
fn for_each_key<const D: usize>(lo: [i64; D], hi: [i64; D], mut f: impl FnMut([i64; D])) {
    let mut key = lo;
    loop {
        f(key);
        let mut d = 0;
        loop {
            if d == D {
                return;
            }
            key[d] += 1;
            if key[d] <= hi[d] {
                break;
            }
            key[d] = lo[d];
            d += 1;
        }
    }
}

/// Visits every grid cell key overlapped by box `b`.
fn for_each_cell<const D: usize>(cell: f64, b: &Aabb<D>, f: impl FnMut([i64; D])) {
    let (lo, hi) = cell_range(cell, b);
    for_each_key(lo, hi, f);
}

/// Insertion sort for nearly-sorted pair arrays: `O(n + inversions)`.
/// Gives up (returning `false`, with the array left as a valid
/// permutation for the caller's `sort_unstable` fallback) once `budget`
/// element shifts are spent — the signature of motion too sheared for
/// incremental patching to pay off.
fn nearly_sorted_insertion<const D: usize>(pairs: &mut [([i64; D], u32)], budget: usize) -> bool {
    let mut shifts = 0usize;
    for i in 1..pairs.len() {
        let x = pairs[i];
        let mut j = i;
        while j > 0 && pairs[j - 1] > x {
            pairs[j] = pairs[j - 1];
            j -= 1;
            shifts += 1;
            if shifts > budget {
                pairs[j] = x;
                return false;
            }
        }
        pairs[j] = x;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use cip_geom::Point;

    fn unit_box(x: f64, y: f64) -> Aabb<2> {
        Aabb::new(Point::new([x, y]), Point::new([x + 1.0, y + 1.0]))
    }

    fn query_sorted<const D: usize>(g: &UniformGrid<D>, q: &Aabb<D>, out: &mut Vec<u32>) {
        let mut scratch = g.scratch();
        g.query(q, &mut scratch, out);
        out.sort_unstable();
    }

    #[test]
    fn finds_intersecting_boxes_only() {
        let boxes = vec![unit_box(0.0, 0.0), unit_box(5.0, 5.0), unit_box(0.5, 0.5)];
        let g = UniformGrid::build(&boxes, 1.0);
        let mut out = Vec::new();
        query_sorted(&g, &unit_box(0.2, 0.2), &mut out);
        assert_eq!(out, vec![0, 2]);
        query_sorted(&g, &unit_box(100.0, 100.0), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn matches_bruteforce_on_random_layout() {
        // Deterministic pseudo-random boxes.
        let mut state = 99u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 1000) as f64 / 10.0
        };
        let boxes: Vec<Aabb<2>> = (0..200)
            .map(|_| {
                let x = next();
                let y = next();
                Aabb::new(Point::new([x, y]), Point::new([x + 1.0 + next() * 0.05, y + 1.0]))
            })
            .collect();
        let g = UniformGrid::build_auto(&boxes);
        let mut scratch = g.scratch();
        let mut out = Vec::new();
        for q in boxes.iter().step_by(7) {
            g.query(q, &mut scratch, &mut out);
            out.sort_unstable();
            let brute: Vec<u32> = boxes
                .iter()
                .enumerate()
                .filter(|(_, b)| b.intersects(q))
                .map(|(i, _)| i as u32)
                .collect();
            assert_eq!(out, brute);
        }
    }

    #[test]
    fn query_yields_no_duplicates_without_sorting() {
        // A big box spanning many cells, queried by a box that also spans
        // many cells: the stamp dedup must suppress the repeats.
        let boxes =
            vec![Aabb::new(Point::new([0.0, 0.0]), Point::new([10.0, 10.0])), unit_box(2.0, 2.0)];
        let g = UniformGrid::build(&boxes, 1.0);
        let mut scratch = g.scratch();
        let mut out = Vec::new();
        g.query(&Aabb::new(Point::new([1.0, 1.0]), Point::new([9.0, 9.0])), &mut scratch, &mut out);
        let mut sorted = out.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(out.len(), sorted.len(), "duplicates in {out:?}");
        assert_eq!(sorted, vec![0, 1]);
    }

    #[test]
    fn scratch_reuse_across_queries_matches_fresh_scratch() {
        let boxes: Vec<Aabb<2>> =
            (0..50).map(|i| unit_box((i % 10) as f64, (i / 10) as f64)).collect();
        let g = UniformGrid::build_auto(&boxes);
        let mut reused = g.scratch();
        let mut a = Vec::new();
        let mut b = Vec::new();
        for q in boxes.iter().step_by(3) {
            g.query(q, &mut reused, &mut a);
            g.query(q, &mut g.scratch(), &mut b);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn empty_grid_and_empty_query() {
        let g = UniformGrid::<2>::build(&[], 1.0);
        assert!(g.is_empty());
        let mut out = vec![1, 2, 3];
        g.query(&Aabb::empty(), &mut g.scratch(), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn build_auto_handles_degenerate_point_boxes() {
        // All-degenerate boxes used to drive the mean extent to ~0 and the
        // cell size with it; a query then had to walk billions of cells.
        // Now the cell size comes from the domain extent.
        let boxes: Vec<Aabb<2>> = (0..64)
            .map(|i| Aabb::from_point(Point::new([(i % 8) as f64 * 100.0, (i / 8) as f64 * 100.0])))
            .collect();
        let g = UniformGrid::build_auto(&boxes);
        let mut out = Vec::new();
        let q = Aabb::new(Point::new([-1.0, -1.0]), Point::new([101.0, 101.0]));
        query_sorted(&g, &q, &mut out);
        let brute: Vec<u32> = boxes
            .iter()
            .enumerate()
            .filter(|(_, b)| b.intersects(&q))
            .map(|(i, _)| i as u32)
            .collect();
        assert_eq!(out, brute);

        // All boxes on one single point is fine too.
        let same: Vec<Aabb<2>> = (0..4).map(|_| Aabb::from_point(Point::new([3.0, 3.0]))).collect();
        let g2 = UniformGrid::build_auto(&same);
        query_sorted(&g2, &Aabb::from_point(Point::new([3.0, 3.0])).inflate(0.1), &mut out);
        assert_eq!(out, vec![0, 1, 2, 3]);
    }

    /// Queries every box against both grids; they must agree exactly.
    fn assert_same_answers<const D: usize>(
        a: &UniformGrid<D>,
        b: &UniformGrid<D>,
        boxes: &[Aabb<D>],
    ) {
        let (mut sa, mut sb) = (a.scratch(), b.scratch());
        let (mut oa, mut ob) = (Vec::new(), Vec::new());
        for q in boxes {
            let q = q.inflate(0.3);
            a.query(&q, &mut sa, &mut oa);
            b.query(&q, &mut sb, &mut ob);
            oa.sort_unstable();
            ob.sort_unstable();
            assert_eq!(oa, ob);
        }
    }

    fn shifted(boxes: &[Aabb<2>], dx: f64, dy: f64) -> Vec<Aabb<2>> {
        boxes
            .iter()
            .map(|b| {
                Aabb::new(
                    Point::new([b.min[0] + dx, b.min[1] + dy]),
                    Point::new([b.max[0] + dx, b.max[1] + dy]),
                )
            })
            .collect()
    }

    #[test]
    fn incremental_translation_matches_fresh_build() {
        let boxes: Vec<Aabb<2>> =
            (0..40).map(|i| unit_box((i % 8) as f64 * 1.5, (i / 8) as f64 * 1.5)).collect();
        let mut g = UniformGrid::build(&boxes, 1.0);
        // Sub-cell drift per step; each step stays within one cell.
        let mut cur = boxes;
        for step in 1..=5 {
            cur = shifted(&cur, 0.4, 0.3);
            let outcome = g.update(&cur);
            assert!(
                matches!(outcome, GridUpdate::Incremental { .. }),
                "step {step}: drift under a cell must stay incremental, got {outcome:?}"
            );
            let fresh = UniformGrid::build(&cur, 1.0);
            assert_same_answers(&g, &fresh, &cur);
        }
    }

    #[test]
    fn unchanged_boxes_are_a_noop_update() {
        let boxes: Vec<Aabb<2>> = (0..10).map(|i| unit_box(i as f64 * 2.0, 0.0)).collect();
        let mut g = UniformGrid::build(&boxes, 1.0);
        assert_eq!(g.update(&boxes), GridUpdate::Incremental { translated: 0, refreshed: 0 });
        assert_same_answers(&g, &UniformGrid::build(&boxes, 1.0), &boxes);
    }

    #[test]
    fn shape_change_is_refreshed_not_translated() {
        let mut boxes: Vec<Aabb<2>> =
            (0..32).map(|i| unit_box((i % 8) as f64 * 2.0, (i / 8) as f64 * 2.0)).collect();
        let mut g = UniformGrid::build(&boxes, 1.0);
        // Stretch one box so it spans one more cell column.
        boxes[5] = Aabb::new(boxes[5].min, Point::new([boxes[5].max[0] + 1.0, boxes[5].max[1]]));
        match g.update(&boxes) {
            GridUpdate::Incremental { refreshed, .. } => assert_eq!(refreshed, 1),
            other => panic!("one shape change among 32 boxes must patch, got {other:?}"),
        }
        assert_same_answers(&g, &UniformGrid::build(&boxes, 1.0), &boxes);
    }

    #[test]
    fn far_displacement_falls_back_to_full_rebuild() {
        let boxes: Vec<Aabb<2>> = (0..16).map(|i| unit_box(i as f64 * 2.0, 0.0)).collect();
        let mut g = UniformGrid::build(&boxes, 1.0);
        let moved = shifted(&boxes, 7.0, 0.0);
        assert_eq!(g.update(&moved), GridUpdate::FullRebuild);
        assert_same_answers(&g, &UniformGrid::build(&moved, 1.0), &moved);
    }

    #[test]
    fn box_count_change_falls_back_to_full_rebuild() {
        let boxes: Vec<Aabb<2>> = (0..8).map(|i| unit_box(i as f64 * 2.0, 0.0)).collect();
        let mut g = UniformGrid::build(&boxes, 1.0);
        let mut more = boxes.clone();
        more.push(unit_box(100.0, 100.0));
        assert_eq!(g.update(&more), GridUpdate::FullRebuild);
        assert_eq!(g.len(), 9);
        assert_same_answers(&g, &UniformGrid::build(&more, 1.0), &more);
    }

    #[test]
    fn boxes_may_appear_and_vanish_between_updates() {
        let mut boxes: Vec<Aabb<2>> = (0..16).map(|i| unit_box(i as f64 * 2.0, 0.0)).collect();
        let mut g = UniformGrid::build(&boxes, 1.0);
        boxes[3] = Aabb::empty();
        let out = g.update(&boxes);
        assert!(matches!(out, GridUpdate::Incremental { .. }), "got {out:?}");
        assert_same_answers(&g, &UniformGrid::build(&boxes, 1.0), &boxes);
        boxes[3] = unit_box(6.0, 0.0);
        let out = g.update(&boxes);
        assert!(matches!(out, GridUpdate::Incremental { .. }), "got {out:?}");
        assert_same_answers(&g, &UniformGrid::build(&boxes, 1.0), &boxes);
    }

    #[test]
    fn random_walk_updates_stay_exact_against_bruteforce() {
        let mut state = 7u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state % 1000) as f64 / 1000.0) - 0.5
        };
        let mut boxes: Vec<Aabb<2>> =
            (0..60).map(|i| unit_box((i % 10) as f64 * 1.3, (i / 10) as f64 * 1.3)).collect();
        let mut g = UniformGrid::build(&boxes, 1.2);
        for _ in 0..8 {
            boxes = boxes
                .iter()
                .map(|b| {
                    let (dx, dy) = (next() * 0.8, next() * 0.8);
                    Aabb::new(
                        Point::new([b.min[0] + dx, b.min[1] + dy]),
                        Point::new([b.max[0] + dx, b.max[1] + dy]),
                    )
                })
                .collect();
            g.update(&boxes);
            let mut scratch = g.scratch();
            let mut out = Vec::new();
            for q in boxes.iter().step_by(5) {
                let q = q.inflate(0.2);
                g.query(&q, &mut scratch, &mut out);
                out.sort_unstable();
                let brute: Vec<u32> = boxes
                    .iter()
                    .enumerate()
                    .filter(|(_, b)| b.intersects(&q))
                    .map(|(i, _)| i as u32)
                    .collect();
                assert_eq!(out, brute);
            }
        }
    }

    #[test]
    fn three_dimensional_grid() {
        let boxes: Vec<Aabb<3>> = (0..10)
            .map(|i| {
                let x = i as f64 * 2.0;
                Aabb::new(Point::new([x, 0.0, 0.0]), Point::new([x + 1.0, 1.0, 1.0]))
            })
            .collect();
        let g = UniformGrid::build(&boxes, 1.5);
        let mut out = Vec::new();
        query_sorted(
            &g,
            &Aabb::new(Point::new([3.5, 0.0, 0.0]), Point::new([6.5, 1.0, 1.0])),
            &mut out,
        );
        assert_eq!(out, vec![2, 3]);
    }
}
