//! Uniform-grid broad phase.
//!
//! A simple spatial hash over axis-aligned boxes: each box is registered in
//! every cell it overlaps; box-vs-set queries gather the candidates from
//! the query's cells. This is the serial "volume partitioning / spatial
//! indexing" acceleration the paper mentions for on-processor global
//! search, and the test suite's ground-truth oracle for filter
//! completeness.

use cip_geom::Aabb;
use std::collections::HashMap;

/// A uniform spatial hash grid over `D`-dimensional boxes.
#[derive(Debug, Clone)]
pub struct UniformGrid<const D: usize> {
    cell: f64,
    cells: HashMap<[i64; D], Vec<u32>>,
    boxes: Vec<Aabb<D>>,
}

impl<const D: usize> UniformGrid<D> {
    /// Builds a grid over `boxes` with the given cell size.
    ///
    /// # Panics
    /// Panics if `cell_size` is not finite and positive.
    pub fn build(boxes: &[Aabb<D>], cell_size: f64) -> Self {
        assert!(cell_size.is_finite() && cell_size > 0.0, "cell size must be positive");
        let mut cells: HashMap<[i64; D], Vec<u32>> = HashMap::new();
        for (i, b) in boxes.iter().enumerate() {
            if b.is_empty() {
                continue;
            }
            for_each_cell(cell_size, b, |key| {
                cells.entry(key).or_default().push(i as u32);
            });
        }
        Self { cell: cell_size, cells, boxes: boxes.to_vec() }
    }

    /// Builds a grid with a cell size derived from the average box extent
    /// (a reasonable default for roughly uniform surface elements).
    pub fn build_auto(boxes: &[Aabb<D>]) -> Self {
        let mut sum = 0.0;
        let mut count = 0usize;
        for b in boxes {
            if b.is_empty() {
                continue;
            }
            for d in 0..D {
                sum += b.extent(d);
            }
            count += D;
        }
        let mean = if count == 0 { 1.0 } else { (sum / count as f64).max(1e-9) };
        Self::build(boxes, 2.0 * mean)
    }

    /// Collects the indices of boxes whose cells overlap the query's cells
    /// and which actually intersect the (inflated) query box.
    pub fn query(&self, query: &Aabb<D>, out: &mut Vec<u32>) {
        out.clear();
        if query.is_empty() {
            return;
        }
        for_each_cell(self.cell, query, |key| {
            if let Some(v) = self.cells.get(&key) {
                out.extend_from_slice(v);
            }
        });
        out.sort_unstable();
        out.dedup();
        out.retain(|&i| self.boxes[i as usize].intersects(query));
    }

    /// Number of boxes registered.
    pub fn len(&self) -> usize {
        self.boxes.len()
    }

    /// Whether the grid holds no boxes.
    pub fn is_empty(&self) -> bool {
        self.boxes.is_empty()
    }
}

/// Visits every grid cell key overlapped by box `b` (odometer iteration
/// over the D-dimensional cell range).
fn for_each_cell<const D: usize>(cell: f64, b: &Aabb<D>, mut f: impl FnMut([i64; D])) {
    let key_of = |coord: f64| (coord / cell).floor() as i64;
    let mut lo = [0i64; D];
    let mut hi = [0i64; D];
    for d in 0..D {
        lo[d] = key_of(b.min[d]);
        hi[d] = key_of(b.max[d]);
    }
    let mut key = lo;
    loop {
        f(key);
        let mut d = 0;
        loop {
            if d == D {
                return;
            }
            key[d] += 1;
            if key[d] <= hi[d] {
                break;
            }
            key[d] = lo[d];
            d += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cip_geom::Point;

    fn unit_box(x: f64, y: f64) -> Aabb<2> {
        Aabb::new(Point::new([x, y]), Point::new([x + 1.0, y + 1.0]))
    }

    #[test]
    fn finds_intersecting_boxes_only() {
        let boxes = vec![unit_box(0.0, 0.0), unit_box(5.0, 5.0), unit_box(0.5, 0.5)];
        let g = UniformGrid::build(&boxes, 1.0);
        let mut out = Vec::new();
        g.query(&unit_box(0.2, 0.2), &mut out);
        assert_eq!(out, vec![0, 2]);
        g.query(&unit_box(100.0, 100.0), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn matches_bruteforce_on_random_layout() {
        // Deterministic pseudo-random boxes.
        let mut state = 99u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 1000) as f64 / 10.0
        };
        let boxes: Vec<Aabb<2>> = (0..200)
            .map(|_| {
                let x = next();
                let y = next();
                Aabb::new(Point::new([x, y]), Point::new([x + 1.0 + next() * 0.05, y + 1.0]))
            })
            .collect();
        let g = UniformGrid::build_auto(&boxes);
        let mut out = Vec::new();
        for q in boxes.iter().step_by(7) {
            g.query(q, &mut out);
            let brute: Vec<u32> = boxes
                .iter()
                .enumerate()
                .filter(|(_, b)| b.intersects(q))
                .map(|(i, _)| i as u32)
                .collect();
            assert_eq!(out, brute);
        }
    }

    #[test]
    fn empty_grid_and_empty_query() {
        let g = UniformGrid::<2>::build(&[], 1.0);
        assert!(g.is_empty());
        let mut out = vec![1, 2, 3];
        g.query(&Aabb::empty(), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn three_dimensional_grid() {
        let boxes: Vec<Aabb<3>> = (0..10)
            .map(|i| {
                let x = i as f64 * 2.0;
                Aabb::new(Point::new([x, 0.0, 0.0]), Point::new([x + 1.0, 1.0, 1.0]))
            })
            .collect();
        let g = UniformGrid::build(&boxes, 1.5);
        let mut out = Vec::new();
        g.query(&Aabb::new(Point::new([3.5, 0.0, 0.0]), Point::new([6.5, 1.0, 1.0])), &mut out);
        assert_eq!(out, vec![2, 3]);
    }
}
