//! Local search: proximity-based candidate contact pairs.
//!
//! The paper's scope is the *global* search phase; this module supplies the
//! orthogonal local step so the library is usable end-to-end: among a set
//! of surface elements (approximated by their bounding boxes, as in the
//! paper's evaluation), find the pairs from *different bodies* whose
//! inflated boxes intersect. A uniform-grid broad phase keeps it near
//! linear in the element count.

use crate::grid::UniformGrid;
use cip_geom::Aabb;
use rayon::prelude::*;

/// A candidate contact pair of surface elements (indices into the caller's
/// surface-element array, with `a < b`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct ContactPair {
    /// First element index.
    pub a: u32,
    /// Second element index.
    pub b: u32,
}

/// Finds all candidate contact pairs among `boxes`, pairing only elements
/// of different `body` ids (self-contact within one body is excluded, as
/// in penetration problems where a body's own faces stay connected), whose
/// boxes inflated by `tolerance` intersect.
///
/// Returns pairs sorted ascending. Deterministic.
pub fn find_contact_pairs<const D: usize>(
    boxes: &[Aabb<D>],
    body: &[u16],
    tolerance: f64,
) -> Vec<ContactPair> {
    assert_eq!(boxes.len(), body.len(), "one body id per element");
    let grid = UniformGrid::build_auto(boxes);
    // One (stamp scratch, candidate buffer) per worker via map_init, so
    // the hot query loop does not allocate per element.
    let mut pairs: Vec<ContactPair> = (0..boxes.len() as u32)
        .into_par_iter()
        .map_init(
            || (grid.scratch(), Vec::new()),
            |(scratch, out), a| {
                let q = boxes[a as usize].inflate(tolerance);
                grid.query(&q, scratch, out);
                let mut local = Vec::new();
                for &b in out.iter() {
                    if b > a && body[a as usize] != body[b as usize] {
                        local.push(ContactPair { a, b });
                    }
                }
                local
            },
        )
        .flatten()
        .collect();
    pairs.sort_unstable();
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use cip_geom::Point;

    fn unit_box(x: f64, y: f64) -> Aabb<2> {
        Aabb::new(Point::new([x, y]), Point::new([x + 1.0, y + 1.0]))
    }

    #[test]
    fn touching_cross_body_boxes_pair_up() {
        let boxes = vec![unit_box(0.0, 0.0), unit_box(1.05, 0.0), unit_box(10.0, 0.0)];
        let body = vec![0, 1, 1];
        let pairs = find_contact_pairs(&boxes, &body, 0.1);
        assert_eq!(pairs, vec![ContactPair { a: 0, b: 1 }]);
    }

    #[test]
    fn same_body_never_pairs() {
        let boxes = vec![unit_box(0.0, 0.0), unit_box(0.5, 0.0)];
        let body = vec![3, 3];
        assert!(find_contact_pairs(&boxes, &body, 0.5).is_empty());
    }

    #[test]
    fn tolerance_controls_capture_distance() {
        let boxes = vec![unit_box(0.0, 0.0), unit_box(1.5, 0.0)];
        let body = vec![0, 1];
        assert!(find_contact_pairs(&boxes, &body, 0.1).is_empty());
        assert_eq!(find_contact_pairs(&boxes, &body, 0.6).len(), 1);
    }

    #[test]
    fn pairs_are_sorted_and_unique() {
        let boxes: Vec<Aabb<2>> = (0..6).map(|i| unit_box(i as f64 * 0.5, 0.0)).collect();
        let body = vec![0, 1, 0, 1, 0, 1];
        let pairs = find_contact_pairs(&boxes, &body, 0.01);
        let mut sorted = pairs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(pairs, sorted);
        assert!(pairs.iter().all(|p| p.a < p.b));
    }
}
