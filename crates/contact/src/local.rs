//! Local search: proximity-based candidate contact pairs.
//!
//! The paper's scope is the *global* search phase; this module supplies the
//! orthogonal local step so the library is usable end-to-end: among a set
//! of surface elements (approximated by their bounding boxes, as in the
//! paper's evaluation), find the pairs from *different bodies* whose
//! inflated boxes intersect. A uniform-grid broad phase keeps it near
//! linear in the element count.

use crate::grid::{GridUpdate, UniformGrid};
use cip_geom::Aabb;
use rayon::prelude::*;

/// A candidate contact pair of surface elements (indices into the caller's
/// surface-element array, with `a < b`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct ContactPair {
    /// First element index.
    pub a: u32,
    /// Second element index.
    pub b: u32,
}

/// Finds all candidate contact pairs among `boxes`, pairing only elements
/// of different `body` ids (self-contact within one body is excluded, as
/// in penetration problems where a body's own faces stay connected), whose
/// boxes inflated by `tolerance` intersect.
///
/// Returns pairs sorted ascending. Deterministic.
pub fn find_contact_pairs<const D: usize>(
    boxes: &[Aabb<D>],
    body: &[u16],
    tolerance: f64,
) -> Vec<ContactPair> {
    assert_eq!(boxes.len(), body.len(), "one body id per element");
    let grid = UniformGrid::build_auto(boxes);
    query_pairs(&grid, boxes, body, tolerance)
}

/// Broad-phase state carried across time steps: the previous step's
/// [`UniformGrid`], updated in place by [`find_contact_pairs_cached`]
/// instead of rebuilt. One per searching rank; the pipelined executor
/// holds one per rank thread across a batch.
#[derive(Debug, Default)]
pub struct SearchCache<const D: usize> {
    grid: Option<UniformGrid<D>>,
    last: Option<GridUpdate>,
}

impl<const D: usize> SearchCache<D> {
    /// An empty cache (the first search builds the grid from scratch).
    pub fn new() -> Self {
        Self { grid: None, last: None }
    }

    /// How the last search refreshed the grid (`None` before the first
    /// search; the first search itself reports a full rebuild).
    pub fn last_update(&self) -> Option<GridUpdate> {
        self.last
    }
}

/// [`find_contact_pairs`] with a cross-step grid cache: the broad phase
/// updates the previous step's grid incrementally when the boxes moved
/// less than a cell (falling back to a full rebuild otherwise — see
/// [`UniformGrid::update`]). Grid queries are exact for any cell layout,
/// so the returned pairs are identical to the uncached function's.
pub fn find_contact_pairs_cached<const D: usize>(
    cache: &mut SearchCache<D>,
    boxes: &[Aabb<D>],
    body: &[u16],
    tolerance: f64,
) -> Vec<ContactPair> {
    assert_eq!(boxes.len(), body.len(), "one body id per element");
    match &mut cache.grid {
        Some(grid) => cache.last = Some(grid.update(boxes)),
        slot @ None => {
            *slot = Some(UniformGrid::build_auto(boxes));
            cache.last = Some(GridUpdate::FullRebuild);
        }
    }
    match &cache.grid {
        Some(grid) => query_pairs(grid, boxes, body, tolerance),
        None => Vec::new(), // unreachable: the slot was just filled
    }
}

/// The narrow phase shared by the cached and uncached front ends.
fn query_pairs<const D: usize>(
    grid: &UniformGrid<D>,
    boxes: &[Aabb<D>],
    body: &[u16],
    tolerance: f64,
) -> Vec<ContactPair> {
    // One (stamp scratch, candidate buffer) per worker via map_init, so
    // the hot query loop does not allocate per element.
    let mut pairs: Vec<ContactPair> = (0..boxes.len() as u32)
        .into_par_iter()
        .map_init(
            || (grid.scratch(), Vec::new()),
            |(scratch, out), a| {
                let q = boxes[a as usize].inflate(tolerance);
                grid.query(&q, scratch, out);
                let mut local = Vec::new();
                for &b in out.iter() {
                    if b > a && body[a as usize] != body[b as usize] {
                        local.push(ContactPair { a, b });
                    }
                }
                local
            },
        )
        .flatten()
        .collect();
    pairs.sort_unstable();
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use cip_geom::Point;

    fn unit_box(x: f64, y: f64) -> Aabb<2> {
        Aabb::new(Point::new([x, y]), Point::new([x + 1.0, y + 1.0]))
    }

    #[test]
    fn touching_cross_body_boxes_pair_up() {
        let boxes = vec![unit_box(0.0, 0.0), unit_box(1.05, 0.0), unit_box(10.0, 0.0)];
        let body = vec![0, 1, 1];
        let pairs = find_contact_pairs(&boxes, &body, 0.1);
        assert_eq!(pairs, vec![ContactPair { a: 0, b: 1 }]);
    }

    #[test]
    fn same_body_never_pairs() {
        let boxes = vec![unit_box(0.0, 0.0), unit_box(0.5, 0.0)];
        let body = vec![3, 3];
        assert!(find_contact_pairs(&boxes, &body, 0.5).is_empty());
    }

    #[test]
    fn tolerance_controls_capture_distance() {
        let boxes = vec![unit_box(0.0, 0.0), unit_box(1.5, 0.0)];
        let body = vec![0, 1];
        assert!(find_contact_pairs(&boxes, &body, 0.1).is_empty());
        assert_eq!(find_contact_pairs(&boxes, &body, 0.6).len(), 1);
    }

    #[test]
    fn cached_search_matches_uncached_across_moving_steps() {
        let mut cache = SearchCache::new();
        assert!(cache.last_update().is_none());
        let body: Vec<u16> = (0..10).map(|i| (i % 2) as u16).collect();
        for step in 0..6 {
            let drift = step as f64 * 0.35;
            let boxes: Vec<Aabb<2>> = (0..10)
                .map(|i| unit_box(i as f64 * 1.4 + drift, (i % 3) as f64 * 0.8 - drift))
                .collect();
            let fresh = find_contact_pairs(&boxes, &body, 0.25);
            let cached = find_contact_pairs_cached(&mut cache, &boxes, &body, 0.25);
            assert_eq!(cached, fresh, "step {step}");
            assert!(cache.last_update().is_some());
        }
    }

    #[test]
    fn cached_search_survives_element_count_changes() {
        let mut cache = SearchCache::new();
        for n in [4usize, 9, 2, 0, 7] {
            let boxes: Vec<Aabb<2>> = (0..n).map(|i| unit_box(i as f64 * 0.9, 0.0)).collect();
            let body: Vec<u16> = (0..n).map(|i| (i % 2) as u16).collect();
            let fresh = find_contact_pairs(&boxes, &body, 0.2);
            let cached = find_contact_pairs_cached(&mut cache, &boxes, &body, 0.2);
            assert_eq!(cached, fresh, "n = {n}");
        }
    }

    #[test]
    fn pairs_are_sorted_and_unique() {
        let boxes: Vec<Aabb<2>> = (0..6).map(|i| unit_box(i as f64 * 0.5, 0.0)).collect();
        let body = vec![0, 1, 0, 1, 0, 1];
        let pairs = find_contact_pairs(&boxes, &body, 0.01);
        let mut sorted = pairs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(pairs, sorted);
        assert!(pairs.iter().all(|p| p.a < p.b));
    }
}
