//! Parallel global search and the NRemote metric.
//!
//! Every processor holds the surface elements of its subdomain. Before
//! local search can run, each element must be shipped to every *other*
//! subdomain whose geometric descriptor intersects the element's bounding
//! box (§4 of the paper). [`global_search`] computes that shipment plan for
//! any [`GlobalFilter`], and [`n_remote`] its total size — the paper's
//! **NRemote** communication metric (one count per element-to-remote-part
//! shipment).

use crate::filter::GlobalFilter;
use cip_geom::Aabb;
use rayon::prelude::*;

/// One surface element as seen by the global search: its bounding box and
/// the part that owns it (the part of its subdomain in the decomposition
/// being evaluated).
#[derive(Debug, Clone, Copy)]
pub struct SurfaceElementInfo<const D: usize> {
    /// Bounding box of the element (the paper approximates every surface
    /// element by its bounding box during search).
    pub bbox: Aabb<D>,
    /// Owning part.
    pub owner: u32,
}

/// Computes the shipment plan: for every element, the sorted list of
/// *remote* parts (owner excluded) whose descriptor intersects it.
pub fn global_search<const D: usize, F: GlobalFilter<D> + Sync>(
    elements: &[SurfaceElementInfo<D>],
    filter: &F,
) -> Vec<Vec<u32>> {
    elements
        .par_iter()
        .map(|el| {
            let mut out = Vec::new();
            filter.candidate_parts(&el.bbox, &mut out);
            out.retain(|&p| p != el.owner);
            out
        })
        .collect()
}

/// The total number of element shipments — the paper's **NRemote**:
/// `Σ_elements |candidate_parts \ {owner}|`.
pub fn n_remote<const D: usize, F: GlobalFilter<D> + Sync>(
    elements: &[SurfaceElementInfo<D>],
    filter: &F,
) -> u64 {
    elements
        .par_iter()
        .map(|el| {
            let mut out = Vec::new();
            filter.candidate_parts(&el.bbox, &mut out);
            out.iter().filter(|&&p| p != el.owner).count() as u64
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::BboxFilter;
    use cip_geom::Point;

    /// Two parts with overlapping bounding boxes: part 0 owns x in [0, 10],
    /// part 1 owns x in [8, 20] (overlap zone [8, 10]).
    fn overlapping_filter() -> BboxFilter<2> {
        let pts = vec![
            Point::new([0.0, 0.0]),
            Point::new([10.0, 1.0]),
            Point::new([8.0, 0.0]),
            Point::new([20.0, 1.0]),
        ];
        let asg = vec![0, 0, 1, 1];
        BboxFilter::from_points(&pts, &asg, 2)
    }

    fn elem(x: f64, owner: u32) -> SurfaceElementInfo<2> {
        SurfaceElementInfo {
            bbox: Aabb::new(Point::new([x, 0.0]), Point::new([x + 0.5, 0.5])),
            owner,
        }
    }

    #[test]
    fn elements_in_overlap_zone_are_shipped() {
        let f = overlapping_filter();
        let elements = vec![
            elem(1.0, 0),  // interior of part 0 only
            elem(9.0, 0),  // overlap zone: shipped to part 1
            elem(15.0, 1), // interior of part 1 only
            elem(8.5, 1),  // overlap zone: shipped to part 0
        ];
        let plan = global_search(&elements, &f);
        assert!(plan[0].is_empty());
        assert_eq!(plan[1], vec![1]);
        assert!(plan[2].is_empty());
        assert_eq!(plan[3], vec![0]);
        assert_eq!(n_remote(&elements, &f), 2);
    }

    #[test]
    fn owner_never_counted() {
        let f = overlapping_filter();
        let elements = vec![elem(9.0, 0)];
        let plan = global_search(&elements, &f);
        assert!(!plan[0].contains(&0));
    }

    #[test]
    fn n_remote_zero_for_disjoint_parts() {
        let pts = vec![Point::new([0.0, 0.0]), Point::new([100.0, 0.0])];
        let asg = vec![0, 1];
        let f = BboxFilter::from_points(&pts, &asg, 2);
        let elements = vec![elem(0.0, 0), elem(100.0, 1)];
        assert_eq!(n_remote(&elements, &f), 0);
    }
}
