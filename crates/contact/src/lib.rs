//! Global and local contact search.
//!
//! Parallel contact detection (§2, §4 of the paper) proceeds in two steps:
//!
//! 1. **global search** — decide, for every surface element, which *other
//!    subdomains* might hold elements it could touch, and ship it to those
//!    processors. The decision uses a per-subdomain *geometric descriptor*
//!    as a filter. This crate provides the two descriptors the paper
//!    compares — subdomain **bounding boxes** (the classical filter used
//!    with ML+RCB) and the paper's **decision-tree** leaf regions — plus
//!    RCB regions, behind one [`filter::GlobalFilter`] trait. The number of
//!    elements shipped is the paper's **NRemote** metric.
//! 2. **local search** — on each processor, find the actually-contacting
//!    candidate pairs among owned + received elements. The paper treats
//!    local search as orthogonal; [`local`] supplies a proximity-based
//!    implementation (uniform-grid broad phase + bounding-box tolerance
//!    test) so the library is usable end-to-end and so tests can verify
//!    the *filter completeness* property: no true contact pair is ever
//!    missed by either filter. [`exchange`] materializes the parallel
//!    step (per-rank inboxes + per-rank local search) and proves the
//!    distributed detection equals the serial one.

pub mod exchange;
pub mod filter;
pub mod grid;
pub mod local;
pub mod node_search;
pub mod search;

pub use exchange::{build_exchange, distributed_contact_pairs, serial_contact_pairs, Exchange};
pub use filter::{BboxFilter, DtreeFilter, GlobalFilter, RcbRegionFilter};
pub use grid::{GridScratch, GridUpdate, UniformGrid};
pub use local::{find_contact_pairs, find_contact_pairs_cached, ContactPair, SearchCache};
pub use node_search::{find_node_face_contacts, NodeFaceContact};
pub use search::{global_search, n_remote, SurfaceElementInfo};
