//! Boundary-surface extraction.
//!
//! A facet (edge in 2D, face in 3D) is a *boundary facet* iff exactly one
//! live element owns it. The boundary facets are the paper's **surface
//! (contact) elements** and their nodes the **contact nodes** — the entities
//! the contact-search phase operates on. As elements erode during
//! penetration, interior facets become boundary facets, so the contact set
//! grows exactly as it does in the EPIC simulations the paper evaluates on.

use crate::element::Face;
use crate::mesh::Mesh;
use serde::{Deserialize, Serialize};

/// A boundary facet together with its owning element and body.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SurfaceFace {
    /// The facet (global node ids).
    pub face: Face,
    /// The unique live element owning this facet.
    pub element: u32,
    /// Body id of the owning element.
    pub body: u16,
}

/// The extracted boundary surface of a mesh.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Surface {
    /// Boundary facets — the *surface elements* searched for contact.
    pub faces: Vec<SurfaceFace>,
    /// Sorted, deduplicated node ids of all boundary facets — the
    /// *contact nodes*.
    pub contact_nodes: Vec<u32>,
}

impl Surface {
    /// Number of surface elements.
    pub fn num_faces(&self) -> usize {
        self.faces.len()
    }

    /// Number of contact nodes.
    pub fn num_contact_nodes(&self) -> usize {
        self.contact_nodes.len()
    }

    /// A membership mask over mesh nodes: `mask[n]` iff `n` is a contact
    /// node.
    pub fn contact_node_mask(&self, num_nodes: usize) -> Vec<bool> {
        let mut mask = vec![false; num_nodes];
        for &n in &self.contact_nodes {
            mask[n as usize] = true;
        }
        mask
    }
}

/// Extracts the boundary surface of the live part of `mesh`.
///
/// Runs in `O(F log F)` for `F` total facets via sort-and-scan on canonical
/// facet keys (no hashing, no per-facet allocation).
///
/// ```
/// use cip_geom::Point;
/// use cip_mesh::{extract_surface, generators};
///
/// let mesh = generators::hex_box([2, 2, 2], Point::new([0.0; 3]), [1.0; 3], 0);
/// let surface = extract_surface(&mesh);
/// // A 2x2x2 box exposes 6 faces of 4 quads each.
/// assert_eq!(surface.num_faces(), 24);
/// // All 27 nodes except the center touch the boundary.
/// assert_eq!(surface.num_contact_nodes(), 26);
/// ```
pub fn extract_surface<const D: usize>(mesh: &Mesh<D>) -> Surface {
    // (canonical key, element id, facet index) per live facet.
    let mut recs: Vec<([u32; 4], u32, u8)> = Vec::new();
    for (e, el) in mesh.live_elements() {
        for f in 0..el.kind.num_faces() {
            recs.push((el.face(f).key(), e, f as u8));
        }
    }
    recs.sort_unstable_by_key(|a| a.0);

    let mut faces = Vec::new();
    let mut i = 0;
    while i < recs.len() {
        let mut j = i + 1;
        while j < recs.len() && recs[j].0 == recs[i].0 {
            j += 1;
        }
        if j - i == 1 {
            let (_, e, f) = recs[i];
            let el = &mesh.elements[e as usize];
            faces.push(SurfaceFace {
                face: el.face(f as usize),
                element: e,
                body: mesh.body[e as usize],
            });
        }
        i = j;
    }

    let mut contact_nodes: Vec<u32> =
        faces.iter().flat_map(|sf| sf.face.nodes().iter().copied()).collect();
    contact_nodes.sort_unstable();
    contact_nodes.dedup();
    Surface { faces, contact_nodes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::Element;
    use crate::generators;
    use cip_geom::Point;

    #[test]
    fn single_quad_is_all_boundary() {
        let m = Mesh::<2>::new(
            vec![
                Point::new([0.0, 0.0]),
                Point::new([1.0, 0.0]),
                Point::new([1.0, 1.0]),
                Point::new([0.0, 1.0]),
            ],
            vec![Element::quad4([0, 1, 2, 3])],
        );
        let s = extract_surface(&m);
        assert_eq!(s.num_faces(), 4);
        assert_eq!(s.num_contact_nodes(), 4);
    }

    #[test]
    fn shared_edge_is_interior() {
        // Two quads sharing edge (1,4): 8 total edges, 6 boundary.
        let m = Mesh::<2>::new(
            vec![
                Point::new([0.0, 0.0]),
                Point::new([1.0, 0.0]),
                Point::new([2.0, 0.0]),
                Point::new([0.0, 1.0]),
                Point::new([1.0, 1.0]),
                Point::new([2.0, 1.0]),
            ],
            vec![Element::quad4([0, 1, 4, 3]), Element::quad4([1, 2, 5, 4])],
        );
        let s = extract_surface(&m);
        assert_eq!(s.num_faces(), 6);
        assert_eq!(s.num_contact_nodes(), 6, "all nodes touch the boundary here");
    }

    #[test]
    fn hex_box_surface_count() {
        // An (nx, ny, nz) hex box has 2(nx*ny + ny*nz + nx*nz) boundary faces.
        let m = generators::hex_box([3, 4, 5], Point::new([0.0, 0.0, 0.0]), [1.0, 1.0, 1.0], 0);
        let s = extract_surface(&m);
        assert_eq!(s.num_faces(), 2 * (3 * 4 + 4 * 5 + 3 * 5));
        // Interior nodes are (nx-1)(ny-1)(nz-1).
        let interior = 2 * 3 * 4;
        assert_eq!(s.num_contact_nodes(), m.num_nodes() - interior);
    }

    #[test]
    fn erosion_exposes_new_surface() {
        let m0 = generators::hex_box([3, 3, 3], Point::new([0.0, 0.0, 0.0]), [1.0, 1.0, 1.0], 0);
        let before = extract_surface(&m0).num_faces();
        let mut m = m0;
        // Erode the center element: its 6 faces were interior, all become
        // boundary (owned by the 6 orthogonal neighbors).
        let center = (0..m.num_elements() as u32)
            .find(|&e| {
                let c = m.element_centroid(e);
                (c[0] - 1.5).abs() < 1e-9 && (c[1] - 1.5).abs() < 1e-9 && (c[2] - 1.5).abs() < 1e-9
            })
            .unwrap();
        m.erode(center);
        let after = extract_surface(&m).num_faces();
        assert_eq!(after, before + 6);
    }

    #[test]
    fn fully_eroded_mesh_has_empty_surface() {
        let mut m = generators::hex_box([2, 2, 2], Point::new([0.0, 0.0, 0.0]), [1.0, 1.0, 1.0], 0);
        for e in 0..m.num_elements() as u32 {
            m.erode(e);
        }
        let s = extract_surface(&m);
        assert_eq!(s.num_faces(), 0);
        assert_eq!(s.num_contact_nodes(), 0);
    }

    #[test]
    fn surface_faces_record_owner_and_body() {
        let m = Mesh::<2>::with_bodies(
            vec![
                Point::new([0.0, 0.0]),
                Point::new([1.0, 0.0]),
                Point::new([1.0, 1.0]),
                Point::new([0.0, 1.0]),
            ],
            vec![Element::quad4([0, 1, 2, 3])],
            vec![7],
        );
        let s = extract_surface(&m);
        assert!(s.faces.iter().all(|f| f.element == 0 && f.body == 7));
    }

    #[test]
    fn contact_node_mask_roundtrip() {
        let m = generators::hex_box([2, 2, 2], Point::new([0.0, 0.0, 0.0]), [1.0, 1.0, 1.0], 0);
        let s = extract_surface(&m);
        let mask = s.contact_node_mask(m.num_nodes());
        assert_eq!(mask.iter().filter(|&&b| b).count(), s.num_contact_nodes());
    }
}
