//! Linear finite elements and their face/edge topology.

use serde::{Deserialize, Serialize};

/// The element families supported by the mesh layer.
///
/// 2D elements (Tri3, Quad4) have *edges* as their boundary facets; 3D
/// elements (Tet4, Hex8) have triangular or quadrilateral *faces*. The
/// synthetic projectile workload uses Hex8 throughout (matching the EPIC
/// hexahedral meshes); Tet4/Tri3/Quad4 round out the layer for tests and
/// 2D illustrations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ElementKind {
    /// 3-node triangle (2D).
    Tri3,
    /// 4-node quadrilateral (2D).
    Quad4,
    /// 4-node tetrahedron (3D).
    Tet4,
    /// 8-node hexahedron (3D), nodes 0-3 on the bottom face
    /// (counter-clockwise), 4-7 directly above them.
    Hex8,
}

impl ElementKind {
    /// Number of nodes of this element kind.
    pub const fn num_nodes(self) -> usize {
        match self {
            ElementKind::Tri3 => 3,
            ElementKind::Quad4 => 4,
            ElementKind::Tet4 => 4,
            ElementKind::Hex8 => 8,
        }
    }

    /// Number of boundary facets (edges in 2D, faces in 3D).
    pub const fn num_faces(self) -> usize {
        match self {
            ElementKind::Tri3 => 3,
            ElementKind::Quad4 => 4,
            ElementKind::Tet4 => 4,
            ElementKind::Hex8 => 6,
        }
    }

    /// Number of element edges (used for nodal-graph construction).
    pub const fn num_edges(self) -> usize {
        match self {
            ElementKind::Tri3 => 3,
            ElementKind::Quad4 => 4,
            ElementKind::Tet4 => 6,
            ElementKind::Hex8 => 12,
        }
    }

    /// Spatial dimension this element is naturally embedded in.
    pub const fn dimension(self) -> usize {
        match self {
            ElementKind::Tri3 | ElementKind::Quad4 => 2,
            ElementKind::Tet4 | ElementKind::Hex8 => 3,
        }
    }

    /// Local node indices of facet `f`, in canonical order.
    pub fn face_local(self, f: usize) -> &'static [usize] {
        match self {
            ElementKind::Tri3 => [[0, 1], [1, 2], [2, 0]][f].as_slice(),
            ElementKind::Quad4 => [[0, 1], [1, 2], [2, 3], [3, 0]][f].as_slice(),
            ElementKind::Tet4 => [[0, 2, 1], [0, 1, 3], [1, 2, 3], [0, 3, 2]][f].as_slice(),
            ElementKind::Hex8 => [
                [0, 3, 2, 1], // bottom (z-)
                [4, 5, 6, 7], // top (z+)
                [0, 1, 5, 4], // y-
                [2, 3, 7, 6], // y+
                [1, 2, 6, 5], // x+
                [3, 0, 4, 7], // x-
            ][f]
                .as_slice(),
        }
    }

    /// Local node-index pairs of the element's edges.
    pub fn edges_local(self) -> &'static [[usize; 2]] {
        match self {
            ElementKind::Tri3 => &[[0, 1], [1, 2], [2, 0]],
            ElementKind::Quad4 => &[[0, 1], [1, 2], [2, 3], [3, 0]],
            ElementKind::Tet4 => &[[0, 1], [0, 2], [0, 3], [1, 2], [1, 3], [2, 3]],
            ElementKind::Hex8 => &[
                [0, 1],
                [1, 2],
                [2, 3],
                [3, 0],
                [4, 5],
                [5, 6],
                [6, 7],
                [7, 4],
                [0, 4],
                [1, 5],
                [2, 6],
                [3, 7],
            ],
        }
    }
}

/// An element: a kind plus its global node ids.
///
/// Node ids are stored in a fixed 8-slot array (unused slots are
/// `u32::MAX`) so `Vec<Element>` stays contiguous without boxing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Element {
    /// Element family.
    pub kind: ElementKind,
    nodes: [u32; 8],
}

impl Element {
    /// Creates an element from its kind and global node ids.
    ///
    /// # Panics
    /// Panics if `nodes.len()` does not match the kind.
    pub fn new(kind: ElementKind, nodes: &[u32]) -> Self {
        assert_eq!(nodes.len(), kind.num_nodes(), "wrong node count for {kind:?}");
        let mut arr = [u32::MAX; 8];
        arr[..nodes.len()].copy_from_slice(nodes);
        Self { kind, nodes: arr }
    }

    /// Shorthand for a hexahedron.
    pub fn hex8(nodes: [u32; 8]) -> Self {
        Self { kind: ElementKind::Hex8, nodes }
    }

    /// Shorthand for a quadrilateral.
    pub fn quad4(nodes: [u32; 4]) -> Self {
        Self::new(ElementKind::Quad4, &nodes)
    }

    /// Shorthand for a triangle.
    pub fn tri3(nodes: [u32; 3]) -> Self {
        Self::new(ElementKind::Tri3, &nodes)
    }

    /// Shorthand for a tetrahedron.
    pub fn tet4(nodes: [u32; 4]) -> Self {
        Self::new(ElementKind::Tet4, &nodes)
    }

    /// Global node ids of this element.
    #[inline]
    pub fn nodes(&self) -> &[u32] {
        &self.nodes[..self.kind.num_nodes()]
    }

    /// Global node ids of facet `f`, written into a [`Face`].
    pub fn face(&self, f: usize) -> Face {
        let local = self.kind.face_local(f);
        let mut nodes = [u32::MAX; 4];
        for (slot, &l) in nodes.iter_mut().zip(local.iter()) {
            *slot = self.nodes[l];
        }
        Face { nodes, len: local.len() as u8 }
    }

    /// Iterates over the element's global edges.
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.kind.edges_local().iter().map(move |&[a, b]| (self.nodes[a], self.nodes[b]))
    }
}

/// A boundary facet: up to four global node ids (segments in 2D, triangles
/// or quadrilaterals in 3D).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Face {
    nodes: [u32; 4],
    len: u8,
}

impl Face {
    /// The facet's global node ids in element-local order.
    #[inline]
    pub fn nodes(&self) -> &[u32] {
        &self.nodes[..self.len as usize]
    }

    /// A sort-canonical key identifying the facet regardless of orientation
    /// or starting node. Two elements share a facet iff their keys match.
    pub fn key(&self) -> [u32; 4] {
        let mut k = self.nodes;
        k[..self.len as usize].sort_unstable();
        k
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_counts_consistent() {
        for kind in [ElementKind::Tri3, ElementKind::Quad4, ElementKind::Tet4, ElementKind::Hex8] {
            for f in 0..kind.num_faces() {
                let local = kind.face_local(f);
                assert!(local.iter().all(|&l| l < kind.num_nodes()));
            }
            for e in kind.edges_local() {
                assert!(e[0] < kind.num_nodes() && e[1] < kind.num_nodes());
            }
            assert_eq!(kind.edges_local().len(), kind.num_edges());
        }
    }

    #[test]
    fn hex_faces_cover_all_nodes() {
        let e = Element::hex8([10, 11, 12, 13, 14, 15, 16, 17]);
        let mut seen = std::collections::HashSet::new();
        for f in 0..6 {
            for &n in e.face(f).nodes() {
                seen.insert(n);
            }
        }
        assert_eq!(seen.len(), 8);
    }

    #[test]
    fn each_hex_edge_shared_by_two_faces() {
        // In a hexahedron each edge belongs to exactly 2 faces.
        let e = Element::hex8([0, 1, 2, 3, 4, 5, 6, 7]);
        for (a, b) in e.edges() {
            let mut count = 0;
            for f in 0..6 {
                let face = e.face(f);
                let n = face.nodes();
                for i in 0..n.len() {
                    let (x, y) = (n[i], n[(i + 1) % n.len()]);
                    if (x == a && y == b) || (x == b && y == a) {
                        count += 1;
                    }
                }
            }
            assert_eq!(count, 2, "edge ({a},{b})");
        }
    }

    #[test]
    fn face_key_is_orientation_invariant() {
        let f1 = Element::quad4([3, 9, 1, 7]).face(0); // edge (3,9)
        let f2 = Element::quad4([9, 3, 5, 6]).face(0); // edge (9,3)
        assert_eq!(f1.key(), f2.key());
        assert_ne!(f1.nodes(), f2.nodes());
    }

    #[test]
    fn tet_faces_are_triangles() {
        let e = Element::tet4([0, 1, 2, 3]);
        for f in 0..4 {
            assert_eq!(e.face(f).nodes().len(), 3);
        }
    }

    #[test]
    #[should_panic(expected = "wrong node count")]
    fn wrong_node_count_panics() {
        let _ = Element::new(ElementKind::Tri3, &[0, 1]);
    }

    #[test]
    fn edges_report_global_ids() {
        let e = Element::tri3([5, 8, 2]);
        let edges: Vec<_> = e.edges().collect();
        assert_eq!(edges, vec![(5, 8), (8, 2), (2, 5)]);
    }
}
