//! Nodal- and dual-graph construction (§2 of the paper).
//!
//! The partitioner in this system operates on the **nodal graph**: one
//! vertex per (live) mesh node, one edge per mesh edge of a live element.
//! For the contact/impact model of §4.2 the nodal graph carries
//!
//! * two vertex weights — `w1(v) = 1` (finite-element work) for every node
//!   and `w2(v) = 1` for contact nodes, 0 otherwise (contact-search work);
//! * boosted edge weights between pairs of contact nodes (the paper uses 5),
//!   since cutting such an edge costs communication in *both* phases.
//!
//! The **dual graph** (one vertex per element, edges across shared facets)
//! is also provided for completeness and for element-based decompositions.

use crate::mesh::Mesh;
use cip_graph::{Graph, GraphBuilder};

/// Options controlling nodal-graph construction.
#[derive(Debug, Clone, Copy)]
pub struct NodalGraphOptions {
    /// Number of vertex-weight constraints: 1 (FE work only — the ML
    /// baseline) or 2 (FE + contact work — the paper's MCML formulation).
    pub ncon: usize,
    /// Weight of edges connecting two contact nodes (paper: 5).
    pub contact_edge_weight: i64,
    /// Weight of all other edges (paper: 1).
    pub normal_edge_weight: i64,
}

impl Default for NodalGraphOptions {
    fn default() -> Self {
        Self { ncon: 2, contact_edge_weight: 5, normal_edge_weight: 1 }
    }
}

impl NodalGraphOptions {
    /// The single-constraint, uniform-edge-weight options used when
    /// partitioning for the ML+RCB baseline's FE phase.
    pub fn single_constraint() -> Self {
        Self { ncon: 1, contact_edge_weight: 1, normal_edge_weight: 1 }
    }
}

/// A nodal graph together with its mesh-node <-> graph-vertex mappings.
///
/// Only nodes referenced by at least one live element become graph
/// vertices, so eroded regions do not pollute the balance constraints.
#[derive(Debug, Clone)]
pub struct NodalGraph {
    /// The graph (vertices = live mesh nodes).
    pub graph: Graph,
    /// `node_of_vertex[gv] = mesh node id`.
    pub node_of_vertex: Vec<u32>,
    /// `vertex_of_node[n] = graph vertex id`, or `u32::MAX` for dead nodes.
    pub vertex_of_node: Vec<u32>,
}

impl NodalGraph {
    /// Translates a graph-vertex assignment into a mesh-node assignment
    /// (dead nodes receive `u32::MAX`).
    pub fn assignment_on_nodes(&self, assignment: &[u32]) -> Vec<u32> {
        let mut out = vec![u32::MAX; self.vertex_of_node.len()];
        for (gv, &n) in self.node_of_vertex.iter().enumerate() {
            out[n as usize] = assignment[gv];
        }
        out
    }
}

/// Builds the nodal graph of the live part of `mesh`.
///
/// `contact_mask[n]` marks mesh node `n` as a contact node (see
/// [`crate::surface::Surface::contact_node_mask`]).
pub fn nodal_graph<const D: usize>(
    mesh: &Mesh<D>,
    contact_mask: &[bool],
    opts: NodalGraphOptions,
) -> NodalGraph {
    assert!(opts.ncon == 1 || opts.ncon == 2, "nodal graphs support 1 or 2 constraints");
    assert_eq!(contact_mask.len(), mesh.num_nodes(), "one contact flag per node");
    let live = mesh.live_node_mask();
    let mut node_of_vertex = Vec::new();
    let mut vertex_of_node = vec![u32::MAX; mesh.num_nodes()];
    for n in 0..mesh.num_nodes() {
        if live[n] {
            vertex_of_node[n] = node_of_vertex.len() as u32;
            node_of_vertex.push(n as u32);
        }
    }

    let mut b = GraphBuilder::new(node_of_vertex.len(), opts.ncon);
    for (gv, &n) in node_of_vertex.iter().enumerate() {
        if opts.ncon == 2 {
            b.set_vwgt(gv as u32, &[1, i64::from(contact_mask[n as usize])]);
        } else {
            b.set_vwgt(gv as u32, &[1]);
        }
    }
    // Collect unique mesh edges first: an edge shared by several elements
    // must appear once (the builder would otherwise sum duplicate weights).
    let mut edges: Vec<(u32, u32)> = Vec::new();
    for (_, el) in mesh.live_elements() {
        for (a, c) in el.edges() {
            edges.push(if a < c { (a, c) } else { (c, a) });
        }
    }
    edges.sort_unstable();
    edges.dedup();
    for (a, c) in edges {
        let (ga, gc) = (vertex_of_node[a as usize], vertex_of_node[c as usize]);
        let w = if contact_mask[a as usize] && contact_mask[c as usize] {
            opts.contact_edge_weight
        } else {
            opts.normal_edge_weight
        };
        b.add_edge(ga, gc, w);
    }
    NodalGraph { graph: b.build(), node_of_vertex, vertex_of_node }
}

/// Builds the dual graph of the live part of `mesh`: one vertex per live
/// element, edges between elements sharing a facet. Returns the graph and
/// the `element_of_vertex` mapping.
pub fn dual_graph<const D: usize>(mesh: &Mesh<D>) -> (Graph, Vec<u32>) {
    let mut element_of_vertex = Vec::new();
    let mut vertex_of_element = vec![u32::MAX; mesh.num_elements()];
    for (e, _) in mesh.live_elements() {
        vertex_of_element[e as usize] = element_of_vertex.len() as u32;
        element_of_vertex.push(e);
    }

    // Sort facet records; runs of length 2 are interior facets = dual edges.
    let mut recs: Vec<([u32; 4], u32)> = Vec::new();
    for (e, el) in mesh.live_elements() {
        for f in 0..el.kind.num_faces() {
            recs.push((el.face(f).key(), vertex_of_element[e as usize]));
        }
    }
    recs.sort_unstable_by_key(|a| a.0);

    let mut b = GraphBuilder::new(element_of_vertex.len(), 1);
    for gv in 0..element_of_vertex.len() as u32 {
        b.set_vwgt(gv, &[1]);
    }
    let mut i = 0;
    while i < recs.len() {
        let mut j = i + 1;
        while j < recs.len() && recs[j].0 == recs[i].0 {
            j += 1;
        }
        if j - i == 2 {
            b.add_edge(recs[i].1, recs[i + 1].1, 1);
        }
        i = j;
    }
    (b.build(), element_of_vertex)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::surface::extract_surface;
    use cip_geom::Point;

    fn grid3x3() -> Mesh<2> {
        generators::quad_grid([3, 3], Point::new([0.0, 0.0]), [1.0, 1.0], 0)
    }

    #[test]
    fn nodal_graph_counts() {
        let m = grid3x3();
        let s = extract_surface(&m);
        let ng = nodal_graph(&m, &s.contact_node_mask(m.num_nodes()), Default::default());
        assert_eq!(ng.graph.nv(), 16);
        // 4x4 grid of nodes: 2 * 3 * 4 = 24 distinct mesh edges.
        assert_eq!(ng.graph.ne(), 24);
        assert_eq!(ng.graph.ncon(), 2);
    }

    #[test]
    fn contact_weights_follow_mask() {
        let m = grid3x3();
        let s = extract_surface(&m);
        let mask = s.contact_node_mask(m.num_nodes());
        let ng = nodal_graph(&m, &mask, Default::default());
        // The single interior node of a 3x3 quad grid is node (1+4*... ) —
        // find via mask: exactly 4 interior nodes? No: 4x4 nodes, boundary
        // ring has 12, interior 4.
        let interior: Vec<u32> = (0..m.num_nodes() as u32).filter(|&n| !mask[n as usize]).collect();
        assert_eq!(interior.len(), 4);
        for gv in 0..ng.graph.nv() as u32 {
            let n = ng.node_of_vertex[gv as usize];
            let expect = [1, i64::from(mask[n as usize])];
            assert_eq!(ng.graph.vwgt(gv), &expect);
        }
        // Edges between two boundary (contact) nodes get weight 5.
        for gv in 0..ng.graph.nv() as u32 {
            let n = ng.node_of_vertex[gv as usize];
            for (gu, w) in ng.graph.neighbors(gv) {
                let u = ng.node_of_vertex[gu as usize];
                let both = mask[n as usize] && mask[u as usize];
                assert_eq!(w, if both { 5 } else { 1 });
            }
        }
    }

    #[test]
    fn single_constraint_option() {
        let m = grid3x3();
        let s = extract_surface(&m);
        let ng = nodal_graph(
            &m,
            &s.contact_node_mask(m.num_nodes()),
            NodalGraphOptions::single_constraint(),
        );
        assert_eq!(ng.graph.ncon(), 1);
        assert!(ng.graph.adjwgt().iter().all(|&w| w == 1));
    }

    #[test]
    fn eroded_nodes_excluded() {
        let mut m = grid3x3();
        // Erode the corner element (element 0). Node 0 dies.
        m.erode(0);
        let s = extract_surface(&m);
        let ng = nodal_graph(&m, &s.contact_node_mask(m.num_nodes()), Default::default());
        assert_eq!(ng.graph.nv(), 15);
        assert_eq!(ng.vertex_of_node[0], u32::MAX);
        let nodes = ng.assignment_on_nodes(&vec![3; ng.graph.nv()]);
        assert_eq!(nodes[0], u32::MAX);
        assert!(nodes[1..].iter().all(|&p| p == 3));
    }

    #[test]
    fn dual_graph_of_grid() {
        let m = grid3x3();
        let (dg, eov) = dual_graph(&m);
        assert_eq!(dg.nv(), 9);
        // 3x3 quad grid: 2 * 3 * 2 = 12 element adjacencies.
        assert_eq!(dg.ne(), 12);
        assert_eq!(eov.len(), 9);
    }

    #[test]
    fn dual_graph_respects_erosion() {
        let mut m = grid3x3();
        m.erode(4); // center element
        let (dg, _) = dual_graph(&m);
        assert_eq!(dg.nv(), 8);
        assert_eq!(dg.ne(), 8, "the four adjacencies of the center vanish");
    }

    #[test]
    fn hex_box_dual_graph() {
        let m = generators::hex_box([2, 2, 2], Point::new([0.0, 0.0, 0.0]), [1.0; 3], 0);
        let (dg, _) = dual_graph(&m);
        assert_eq!(dg.nv(), 8);
        // 2x2x2 box: 4 interior faces per axis pair = 12 adjacencies.
        assert_eq!(dg.ne(), 12);
    }
}
