//! Element geometry and quality measures.
//!
//! Contact codes monitor element quality because the deformation field
//! distorts cells near the crater; severely distorted or inverted
//! elements are erosion candidates. This module provides the volume
//! (area) and aspect-ratio measures used by the simulation's diagnostics
//! and by downstream users validating their own meshes.

use crate::element::ElementKind;
use crate::mesh::Mesh;
use cip_geom::Point;

/// Signed area of a 2D polygonal element (shoelace formula; positive for
/// counter-clockwise node ordering).
fn polygon_area(points: &[Point<2>]) -> f64 {
    let n = points.len();
    let mut acc = 0.0;
    for i in 0..n {
        let a = &points[i];
        let b = &points[(i + 1) % n];
        acc += a[0] * b[1] - b[0] * a[1];
    }
    0.5 * acc
}

/// Signed volume of a tetrahedron.
fn tet_volume(p: &[Point<3>; 4]) -> f64 {
    let a = p[1].sub(&p[0]);
    let b = p[2].sub(&p[0]);
    let c = p[3].sub(&p[0]);
    let cross = [a[1] * b[2] - a[2] * b[1], a[2] * b[0] - a[0] * b[2], a[0] * b[1] - a[1] * b[0]];
    (cross[0] * c[0] + cross[1] * c[1] + cross[2] * c[2]) / 6.0
}

/// Signed measure (area in 2D embedded meshes, volume in 3D) of element
/// `e`. Hexahedra are decomposed into five tetrahedra; quadrilaterals use
/// the shoelace formula. Negative values indicate inverted elements.
pub fn element_measure_3d(mesh: &Mesh<3>, e: u32) -> f64 {
    let el = &mesh.elements[e as usize];
    let p = |i: usize| mesh.points[el.nodes()[i] as usize];
    match el.kind {
        ElementKind::Tet4 => tet_volume(&[p(0), p(1), p(2), p(3)]),
        ElementKind::Hex8 => {
            // Standard 5-tet decomposition of a hexahedron.
            let tets = [[0, 1, 3, 4], [1, 2, 3, 6], [1, 4, 5, 6], [3, 4, 6, 7], [1, 3, 4, 6]];
            tets.iter().map(|&[a, b, c, d]| tet_volume(&[p(a), p(b), p(c), p(d)])).sum()
        }
        other => panic!("element kind {other:?} is not a 3D volume element"),
    }
}

/// Signed area of a 2D element.
pub fn element_measure_2d(mesh: &Mesh<2>, e: u32) -> f64 {
    let el = &mesh.elements[e as usize];
    let pts: Vec<Point<2>> = el.nodes().iter().map(|&n| mesh.points[n as usize]).collect();
    match el.kind {
        ElementKind::Tri3 | ElementKind::Quad4 => polygon_area(&pts),
        other => panic!("element kind {other:?} is not a 2D element"),
    }
}

/// Aspect ratio of element `e`: longest edge over shortest edge (≥ 1;
/// 1 for a perfectly regular element).
pub fn aspect_ratio<const D: usize>(mesh: &Mesh<D>, e: u32) -> f64 {
    let el = &mesh.elements[e as usize];
    let mut lo = f64::INFINITY;
    let mut hi: f64 = 0.0;
    for (a, b) in el.edges() {
        let len = mesh.points[a as usize].dist(&mesh.points[b as usize]);
        lo = lo.min(len);
        hi = hi.max(len);
    }
    if lo <= 0.0 {
        f64::INFINITY
    } else {
        hi / lo
    }
}

/// Summary of the live elements' quality.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QualityReport {
    /// Total measure (volume/area) of live elements.
    pub total_measure: f64,
    /// Smallest element measure (negative = inverted element present).
    pub min_measure: f64,
    /// Worst (largest) aspect ratio.
    pub max_aspect: f64,
    /// Number of inverted (non-positive measure) live elements.
    pub inverted: usize,
}

/// Computes the quality report of a 3D mesh's live elements.
pub fn quality_report(mesh: &Mesh<3>) -> QualityReport {
    let mut total = 0.0;
    let mut min = f64::INFINITY;
    let mut max_aspect: f64 = 0.0;
    let mut inverted = 0;
    for (e, _) in mesh.live_elements() {
        let m = element_measure_3d(mesh, e);
        total += m;
        min = min.min(m);
        if m <= 0.0 {
            inverted += 1;
        }
        max_aspect = max_aspect.max(aspect_ratio(mesh, e));
    }
    QualityReport { total_measure: total, min_measure: min, max_aspect, inverted }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::Element;
    use crate::generators;

    #[test]
    fn unit_cube_has_unit_volume() {
        let m = generators::hex_box([1, 1, 1], Point::new([0.0; 3]), [1.0; 3], 0);
        assert!((element_measure_3d(&m, 0) - 1.0).abs() < 1e-12);
        assert!((aspect_ratio(&m, 0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn stretched_box_volume_and_aspect() {
        let m = generators::hex_box([1, 1, 1], Point::new([0.0; 3]), [2.0, 1.0, 4.0], 0);
        assert!((element_measure_3d(&m, 0) - 8.0).abs() < 1e-12);
        assert!((aspect_ratio(&m, 0) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn unit_quad_area() {
        let m = generators::quad_grid([1, 1], Point::new([0.0, 0.0]), [1.0, 1.0], 0);
        assert!((element_measure_2d(&m, 0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn inverted_quad_has_negative_area() {
        // Clockwise node order inverts the sign.
        let m = Mesh::<2>::new(
            vec![
                Point::new([0.0, 0.0]),
                Point::new([0.0, 1.0]),
                Point::new([1.0, 1.0]),
                Point::new([1.0, 0.0]),
            ],
            vec![Element::quad4([0, 1, 2, 3])],
        );
        assert!(element_measure_2d(&m, 0) < 0.0);
    }

    #[test]
    fn tet_volume_correct() {
        let m = Mesh::<3>::new(
            vec![
                Point::new([0.0, 0.0, 0.0]),
                Point::new([1.0, 0.0, 0.0]),
                Point::new([0.0, 1.0, 0.0]),
                Point::new([0.0, 0.0, 1.0]),
            ],
            vec![Element::tet4([0, 1, 2, 3])],
        );
        assert!((element_measure_3d(&m, 0) - 1.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn report_sums_live_elements_only() {
        let mut m = generators::hex_box([2, 1, 1], Point::new([0.0; 3]), [1.0; 3], 0);
        let r0 = quality_report(&m);
        assert!((r0.total_measure - 2.0).abs() < 1e-12);
        assert_eq!(r0.inverted, 0);
        m.erode(0);
        let r1 = quality_report(&m);
        assert!((r1.total_measure - 1.0).abs() < 1e-12);
    }

    #[test]
    fn simulation_never_inverts_elements() {
        // The bounded deformation field must keep every element valid.
        use cip_geom::Point as P;
        let _ = P::<3>::origin();
        let sim_mesh = generators::hex_box([4, 4, 2], Point::new([-2.0, -2.0, -2.0]), [1.0; 3], 0);
        let r = quality_report(&sim_mesh);
        assert_eq!(r.inverted, 0);
        assert!(r.min_measure > 0.0);
    }
}
