//! Multi-body meshes with element erosion.

use crate::element::Element;
use cip_geom::{Aabb, Point};
use serde::{Deserialize, Serialize};

/// A (possibly multi-body) finite-element mesh in `D` dimensions.
///
/// Contact/impact codes delete ("erode") elements as material fails; the
/// mesh therefore carries a live-mask over its elements rather than
/// physically removing them, so node and element ids stay stable across the
/// whole simulation — exactly what the partition-update strategies of §4.3
/// need in order to compare successive decompositions.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mesh<const D: usize> {
    /// Node coordinates (current configuration).
    pub points: Vec<Point<D>>,
    /// Elements (never removed; see `alive`).
    pub elements: Vec<Element>,
    /// Body id of each element (projectile vs plates, etc.).
    pub body: Vec<u16>,
    /// Erosion mask: `alive[e]` is false once element `e` has been deleted.
    pub alive: Vec<bool>,
}

impl<const D: usize> Mesh<D> {
    /// Creates a single-body mesh with all elements alive.
    pub fn new(points: Vec<Point<D>>, elements: Vec<Element>) -> Self {
        let n = elements.len();
        Self { points, elements, body: vec![0; n], alive: vec![true; n] }
    }

    /// Creates a multi-body mesh with all elements alive.
    ///
    /// # Panics
    /// Panics if `body.len() != elements.len()`.
    pub fn with_bodies(points: Vec<Point<D>>, elements: Vec<Element>, body: Vec<u16>) -> Self {
        assert_eq!(body.len(), elements.len(), "one body id per element");
        let n = elements.len();
        Self { points, elements, body, alive: vec![true; n] }
    }

    /// Number of nodes (live or not).
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.points.len()
    }

    /// Number of elements (live or not).
    #[inline]
    pub fn num_elements(&self) -> usize {
        self.elements.len()
    }

    /// Number of live elements.
    pub fn num_live_elements(&self) -> usize {
        self.alive.iter().filter(|&&a| a).count()
    }

    /// Iterates over `(element_id, &Element)` for live elements only.
    pub fn live_elements(&self) -> impl Iterator<Item = (u32, &Element)> + '_ {
        self.elements
            .iter()
            .enumerate()
            .filter(|&(e, _)| self.alive[e])
            .map(|(e, el)| (e as u32, el))
    }

    /// Erodes (deletes) element `e`. Idempotent.
    pub fn erode(&mut self, e: u32) {
        self.alive[e as usize] = false;
    }

    /// Marks the nodes referenced by at least one live element.
    pub fn live_node_mask(&self) -> Vec<bool> {
        let mut mask = vec![false; self.points.len()];
        for (_, el) in self.live_elements() {
            for &n in el.nodes() {
                mask[n as usize] = true;
            }
        }
        mask
    }

    /// Centroid of element `e` (average of its node coordinates).
    pub fn element_centroid(&self, e: u32) -> Point<D> {
        let el = &self.elements[e as usize];
        let mut acc = Point::origin();
        for &n in el.nodes() {
            acc = acc.add(&self.points[n as usize]);
        }
        acc.scale(1.0 / el.nodes().len() as f64)
    }

    /// Tight bounding box of element `e`.
    pub fn element_bbox(&self, e: u32) -> Aabb<D> {
        let el = &self.elements[e as usize];
        let mut b = Aabb::empty();
        for &n in el.nodes() {
            b.grow(&self.points[n as usize]);
        }
        b
    }

    /// Bounding box of the whole mesh (live nodes only).
    pub fn bounds(&self) -> Aabb<D> {
        let mask = self.live_node_mask();
        let mut b = Aabb::empty();
        for (n, p) in self.points.iter().enumerate() {
            if mask[n] {
                b.grow(p);
            }
        }
        b
    }

    /// Appends another mesh (disjoint node/element ids), returning the node
    /// and element id offsets the other mesh's ids were shifted by.
    pub fn append(&mut self, other: &Mesh<D>) -> (u32, u32) {
        let node_off = self.points.len() as u32;
        let elem_off = self.elements.len() as u32;
        self.points.extend_from_slice(&other.points);
        for el in &other.elements {
            let shifted: Vec<u32> = el.nodes().iter().map(|&n| n + node_off).collect();
            self.elements.push(Element::new(el.kind, &shifted));
        }
        self.body.extend_from_slice(&other.body);
        self.alive.extend_from_slice(&other.alive);
        (node_off, elem_off)
    }

    /// Basic sanity checks: node ids in range, parallel arrays consistent.
    pub fn validate(&self) -> Result<(), String> {
        if self.body.len() != self.elements.len() || self.alive.len() != self.elements.len() {
            return Err("parallel element arrays have inconsistent lengths".into());
        }
        for (e, el) in self.elements.iter().enumerate() {
            for &n in el.nodes() {
                if n as usize >= self.points.len() {
                    return Err(format!("element {e} references missing node {n}"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::Element;

    /// Two unit quads side by side: nodes 0..6, elements (0,1,4,3), (1,2,5,4).
    fn two_quads() -> Mesh<2> {
        let points = vec![
            Point::new([0.0, 0.0]),
            Point::new([1.0, 0.0]),
            Point::new([2.0, 0.0]),
            Point::new([0.0, 1.0]),
            Point::new([1.0, 1.0]),
            Point::new([2.0, 1.0]),
        ];
        let elements = vec![Element::quad4([0, 1, 4, 3]), Element::quad4([1, 2, 5, 4])];
        Mesh::new(points, elements)
    }

    #[test]
    fn counts_and_validation() {
        let m = two_quads();
        assert_eq!(m.num_nodes(), 6);
        assert_eq!(m.num_elements(), 2);
        assert_eq!(m.num_live_elements(), 2);
        m.validate().unwrap();
    }

    #[test]
    fn erosion_updates_live_sets() {
        let mut m = two_quads();
        m.erode(0);
        assert_eq!(m.num_live_elements(), 1);
        let mask = m.live_node_mask();
        // Nodes 0 and 3 belong only to the eroded element.
        assert!(!mask[0]);
        assert!(!mask[3]);
        assert!(mask[1] && mask[2] && mask[4] && mask[5]);
        m.erode(0); // idempotent
        assert_eq!(m.num_live_elements(), 1);
    }

    #[test]
    fn centroid_and_bbox() {
        let m = two_quads();
        let c = m.element_centroid(0);
        assert!((c[0] - 0.5).abs() < 1e-12 && (c[1] - 0.5).abs() < 1e-12);
        let b = m.element_bbox(1);
        assert_eq!(b.min, Point::new([1.0, 0.0]));
        assert_eq!(b.max, Point::new([2.0, 1.0]));
    }

    #[test]
    fn bounds_ignore_eroded_only_nodes() {
        let mut m = two_quads();
        m.erode(1);
        let b = m.bounds();
        assert_eq!(b.max[0], 1.0, "node 2 (x=2) only touches the eroded element");
    }

    #[test]
    fn append_shifts_ids() {
        let mut a = two_quads();
        let b = two_quads();
        let (noff, eoff) = a.append(&b);
        assert_eq!(noff, 6);
        assert_eq!(eoff, 2);
        assert_eq!(a.num_nodes(), 12);
        assert_eq!(a.num_elements(), 4);
        assert_eq!(a.elements[2].nodes(), &[6, 7, 10, 9]);
        a.validate().unwrap();
    }

    #[test]
    fn validate_catches_bad_node_reference() {
        let m = Mesh::<2>::new(vec![Point::new([0.0, 0.0])], vec![Element::tri3([0, 1, 2])]);
        assert!(m.validate().is_err());
    }
}
