//! Structured mesh generators.
//!
//! The synthetic workload (and much of the test suite) is built from
//! structured boxes: plates are flat hex boxes, the projectile is a tall
//! thin one. Node and element orderings are lexicographic so generated
//! meshes are deterministic.

use crate::element::Element;
use crate::mesh::Mesh;
use cip_geom::Point;

/// Generates an `nx x ny` structured quadrilateral grid whose lower-left
/// corner is `origin` and whose cells measure `cell[0] x cell[1]`.
pub fn quad_grid(n: [usize; 2], origin: Point<2>, cell: [f64; 2], body: u16) -> Mesh<2> {
    let [nx, ny] = n;
    assert!(nx > 0 && ny > 0, "grid dimensions must be positive");
    let mut points = Vec::with_capacity((nx + 1) * (ny + 1));
    for j in 0..=ny {
        for i in 0..=nx {
            points
                .push(Point::new([origin[0] + i as f64 * cell[0], origin[1] + j as f64 * cell[1]]));
        }
    }
    let node = |i: usize, j: usize| (j * (nx + 1) + i) as u32;
    let mut elements = Vec::with_capacity(nx * ny);
    for j in 0..ny {
        for i in 0..nx {
            elements.push(Element::quad4([
                node(i, j),
                node(i + 1, j),
                node(i + 1, j + 1),
                node(i, j + 1),
            ]));
        }
    }
    let ne = elements.len();
    Mesh::with_bodies(points, elements, vec![body; ne])
}

/// Generates an `nx x ny x nz` structured hexahedral box whose minimum
/// corner is `origin` and whose cells measure `cell[0] x cell[1] x cell[2]`.
pub fn hex_box(n: [usize; 3], origin: Point<3>, cell: [f64; 3], body: u16) -> Mesh<3> {
    let [nx, ny, nz] = n;
    assert!(nx > 0 && ny > 0 && nz > 0, "box dimensions must be positive");
    let mut points = Vec::with_capacity((nx + 1) * (ny + 1) * (nz + 1));
    for k in 0..=nz {
        for j in 0..=ny {
            for i in 0..=nx {
                points.push(Point::new([
                    origin[0] + i as f64 * cell[0],
                    origin[1] + j as f64 * cell[1],
                    origin[2] + k as f64 * cell[2],
                ]));
            }
        }
    }
    let node = |i: usize, j: usize, k: usize| (k * (ny + 1) * (nx + 1) + j * (nx + 1) + i) as u32;
    let mut elements = Vec::with_capacity(nx * ny * nz);
    for k in 0..nz {
        for j in 0..ny {
            for i in 0..nx {
                elements.push(Element::hex8([
                    node(i, j, k),
                    node(i + 1, j, k),
                    node(i + 1, j + 1, k),
                    node(i, j + 1, k),
                    node(i, j, k + 1),
                    node(i + 1, j, k + 1),
                    node(i + 1, j + 1, k + 1),
                    node(i, j + 1, k + 1),
                ]));
            }
        }
    }
    let ne = elements.len();
    Mesh::with_bodies(points, elements, vec![body; ne])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quad_grid_counts() {
        let m = quad_grid([4, 3], Point::new([0.0, 0.0]), [1.0, 1.0], 0);
        assert_eq!(m.num_nodes(), 5 * 4);
        assert_eq!(m.num_elements(), 12);
        m.validate().unwrap();
    }

    #[test]
    fn hex_box_counts() {
        let m = hex_box([2, 3, 4], Point::new([0.0, 0.0, 0.0]), [1.0, 1.0, 1.0], 1);
        assert_eq!(m.num_nodes(), 3 * 4 * 5);
        assert_eq!(m.num_elements(), 24);
        assert!(m.body.iter().all(|&b| b == 1));
        m.validate().unwrap();
    }

    #[test]
    fn geometry_respects_origin_and_cell() {
        let m = quad_grid([2, 2], Point::new([10.0, -5.0]), [0.5, 2.0], 0);
        let b = m.bounds();
        assert_eq!(b.min, Point::new([10.0, -5.0]));
        assert_eq!(b.max, Point::new([11.0, -1.0]));
    }

    #[test]
    fn hex_elements_have_positive_volume_ordering() {
        // Bottom face counter-clockwise seen from +z: the centroid of the
        // top face must be directly above the bottom face.
        let m = hex_box([1, 1, 1], Point::new([0.0, 0.0, 0.0]), [2.0, 2.0, 2.0], 0);
        let el = &m.elements[0];
        let nodes = el.nodes();
        let bottom_z: f64 = nodes[..4].iter().map(|&n| m.points[n as usize][2]).sum::<f64>() / 4.0;
        let top_z: f64 = nodes[4..].iter().map(|&n| m.points[n as usize][2]).sum::<f64>() / 4.0;
        assert!(top_z > bottom_z);
    }
}
