//! Property-based tests for the mesh layer (compiled only with
//! `cfg(test)`).

#![cfg(test)]

use crate::generators;
use crate::graphs::{dual_graph, nodal_graph, NodalGraphOptions};
use crate::io::{read_text, write_text};
use crate::surface::extract_surface;
use cip_geom::Point;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Face-counting identity: for any erosion pattern of a hex box,
    /// `6 * live = boundary + 2 * interior` facets.
    #[test]
    fn surface_counting_identity(
        nx in 1usize..5, ny in 1usize..5, nz in 1usize..4,
        erode_bits in proptest::collection::vec(any::<bool>(), 80)
    ) {
        let mut m = generators::hex_box([nx, ny, nz], Point::new([0.0; 3]), [1.0; 3], 0);
        for (e, &dead) in erode_bits.iter().take(m.num_elements()).enumerate() {
            if dead {
                m.erode(e as u32);
            }
        }
        let live = m.num_live_elements();
        let surface = extract_surface(&m);
        let (dg, _) = dual_graph(&m);
        // Each dual edge is one interior facet shared by two live elements.
        prop_assert_eq!(6 * live, surface.num_faces() + 2 * dg.ne());
    }

    /// Every surface face's owning element is live, and every contact node
    /// belongs to some surface face.
    #[test]
    fn surface_faces_reference_live_elements(
        erode_bits in proptest::collection::vec(any::<bool>(), 27)
    ) {
        let mut m = generators::hex_box([3, 3, 3], Point::new([0.0; 3]), [1.0; 3], 0);
        for (e, &dead) in erode_bits.iter().enumerate() {
            if dead {
                m.erode(e as u32);
            }
        }
        let s = extract_surface(&m);
        for sf in &s.faces {
            prop_assert!(m.alive[sf.element as usize]);
        }
        let mask = s.contact_node_mask(m.num_nodes());
        for &n in &s.contact_nodes {
            prop_assert!(mask[n as usize]);
        }
        // Mask cardinality matches.
        prop_assert_eq!(
            mask.iter().filter(|&&b| b).count(),
            s.num_contact_nodes()
        );
    }

    /// The nodal graph of any erosion state is a valid CSR graph whose
    /// vertices are exactly the live nodes, and constraint-1 totals equal
    /// the contact-node count.
    #[test]
    fn nodal_graph_invariants(
        erode_bits in proptest::collection::vec(any::<bool>(), 24)
    ) {
        let mut m = generators::hex_box([2, 3, 4], Point::new([0.0; 3]), [1.0; 3], 0);
        for (e, &dead) in erode_bits.iter().enumerate() {
            if dead {
                m.erode(e as u32);
            }
        }
        let s = extract_surface(&m);
        let mask = s.contact_node_mask(m.num_nodes());
        let ng = nodal_graph(&m, &mask, NodalGraphOptions::default());
        ng.graph.validate().unwrap();
        let live = m.live_node_mask();
        prop_assert_eq!(ng.graph.nv(), live.iter().filter(|&&b| b).count());
        let totals = ng.graph.total_vwgt();
        prop_assert_eq!(totals[0] as usize, ng.graph.nv());
        // Contact nodes are live, so the second constraint counts them all.
        prop_assert_eq!(totals[1] as usize, s.num_contact_nodes());
    }

    /// Text I/O round-trips any erosion state bit-for-bit.
    #[test]
    fn text_io_roundtrips_random_erosion(
        erode_bits in proptest::collection::vec(any::<bool>(), 12)
    ) {
        let mut m = generators::hex_box([3, 2, 2], Point::new([-1.0, 0.5, 2.0]), [0.5, 1.0, 2.0], 4);
        for (e, &dead) in erode_bits.iter().enumerate() {
            if dead {
                m.erode(e as u32);
            }
        }
        let back: crate::mesh::Mesh<3> = read_text(&write_text(&m)).unwrap();
        prop_assert_eq!(back.points, m.points);
        prop_assert_eq!(back.alive, m.alive);
        prop_assert_eq!(back.body, m.body);
    }
}
