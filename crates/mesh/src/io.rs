//! Plain-text mesh I/O.
//!
//! A small line-oriented format (`cipmesh 1`) so meshes can be moved in
//! and out of the library without JSON tooling — the adoption path for
//! simulation codes that dump their own meshes:
//!
//! ```text
//! cipmesh 1
//! dim 3
//! nodes 2
//! 0.0 0.0 0.0
//! 1.0 0.0 0.0
//! elements 1
//! hex8 0 0 1 2 3 4 5 6 7
//! eroded 0
//! ```
//!
//! * `dim` is 2 or 3; node lines carry that many coordinates;
//! * element lines are `<kind> <body> <node ids...>` with kinds `tri3`,
//!   `quad4`, `tet4`, `hex8`;
//! * `eroded` lists the ids of dead elements (erosion state survives the
//!   round-trip).

use crate::element::{Element, ElementKind};
use crate::mesh::Mesh;
use cip_geom::Point;
use std::fmt::Write as _;

/// Errors produced by the text-format reader.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MeshIoError {
    /// The header line is missing or not `cipmesh 1`.
    BadHeader,
    /// The dimension does not match the requested `D`.
    DimensionMismatch {
        /// Dimension declared in the file.
        found: usize,
        /// Dimension the caller asked for.
        expected: usize,
    },
    /// A line failed to parse.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// The file ended before the declared counts were satisfied.
    UnexpectedEof,
}

impl std::fmt::Display for MeshIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MeshIoError::BadHeader => write!(f, "missing or invalid 'cipmesh 1' header"),
            MeshIoError::DimensionMismatch { found, expected } => {
                write!(f, "mesh is {found}D but {expected}D was requested")
            }
            MeshIoError::Parse { line, message } => write!(f, "line {line}: {message}"),
            MeshIoError::UnexpectedEof => write!(f, "unexpected end of file"),
        }
    }
}

impl std::error::Error for MeshIoError {}

fn kind_name(kind: ElementKind) -> &'static str {
    match kind {
        ElementKind::Tri3 => "tri3",
        ElementKind::Quad4 => "quad4",
        ElementKind::Tet4 => "tet4",
        ElementKind::Hex8 => "hex8",
    }
}

fn kind_from_name(name: &str) -> Option<ElementKind> {
    match name {
        "tri3" => Some(ElementKind::Tri3),
        "quad4" => Some(ElementKind::Quad4),
        "tet4" => Some(ElementKind::Tet4),
        "hex8" => Some(ElementKind::Hex8),
        _ => None,
    }
}

/// Serializes a mesh to the text format.
pub fn write_text<const D: usize>(mesh: &Mesh<D>) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "cipmesh 1");
    let _ = writeln!(s, "dim {D}");
    let _ = writeln!(s, "nodes {}", mesh.num_nodes());
    for p in &mesh.points {
        for d in 0..D {
            if d > 0 {
                s.push(' ');
            }
            let _ = write!(s, "{}", p[d]);
        }
        s.push('\n');
    }
    let _ = writeln!(s, "elements {}", mesh.num_elements());
    for (e, el) in mesh.elements.iter().enumerate() {
        let _ = write!(s, "{} {}", kind_name(el.kind), mesh.body[e]);
        for &n in el.nodes() {
            let _ = write!(s, " {n}");
        }
        s.push('\n');
    }
    let eroded: Vec<usize> =
        mesh.alive.iter().enumerate().filter(|(_, &a)| !a).map(|(e, _)| e).collect();
    let _ = writeln!(s, "eroded {}", eroded.len());
    for e in eroded {
        let _ = writeln!(s, "{e}");
    }
    s
}

/// Parses a mesh from the text format.
pub fn read_text<const D: usize>(input: &str) -> Result<Mesh<D>, MeshIoError> {
    let mut lines = input
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.trim()))
        .filter(|(_, l)| !l.is_empty() && !l.starts_with('#'));
    let mut next = || lines.next().ok_or(MeshIoError::UnexpectedEof);

    // Header.
    let (lineno, header) = next()?;
    if header != "cipmesh 1" {
        let _ = lineno;
        return Err(MeshIoError::BadHeader);
    }
    let (lineno, dim_line) = next()?;
    let dim: usize = dim_line
        .strip_prefix("dim ")
        .and_then(|d| d.parse().ok())
        .ok_or_else(|| MeshIoError::Parse { line: lineno, message: "expected 'dim <n>'".into() })?;
    if dim != D {
        return Err(MeshIoError::DimensionMismatch { found: dim, expected: D });
    }

    // Nodes.
    let (lineno, nodes_line) = next()?;
    let num_nodes: usize =
        nodes_line.strip_prefix("nodes ").and_then(|d| d.parse().ok()).ok_or_else(|| {
            MeshIoError::Parse { line: lineno, message: "expected 'nodes <count>'".into() }
        })?;
    let mut points = Vec::with_capacity(num_nodes);
    for _ in 0..num_nodes {
        let (lineno, line) = next()?;
        let mut coords = [0.0f64; D];
        let mut it = line.split_whitespace();
        for c in coords.iter_mut() {
            *c = it.next().and_then(|t| t.parse().ok()).ok_or_else(|| MeshIoError::Parse {
                line: lineno,
                message: format!("expected {D} coordinates"),
            })?;
        }
        points.push(Point::new(coords));
    }

    // Elements.
    let (lineno, elems_line) = next()?;
    let num_elements: usize =
        elems_line.strip_prefix("elements ").and_then(|d| d.parse().ok()).ok_or_else(|| {
            MeshIoError::Parse { line: lineno, message: "expected 'elements <count>'".into() }
        })?;
    let mut elements = Vec::with_capacity(num_elements);
    let mut body = Vec::with_capacity(num_elements);
    for _ in 0..num_elements {
        let (lineno, line) = next()?;
        let mut it = line.split_whitespace();
        let kind = it.next().and_then(kind_from_name).ok_or_else(|| MeshIoError::Parse {
            line: lineno,
            message: "unknown element kind".into(),
        })?;
        let b: u16 = it.next().and_then(|t| t.parse().ok()).ok_or_else(|| MeshIoError::Parse {
            line: lineno,
            message: "expected body id".into(),
        })?;
        let mut nodes = Vec::with_capacity(kind.num_nodes());
        for _ in 0..kind.num_nodes() {
            let n: u32 =
                it.next().and_then(|t| t.parse().ok()).ok_or_else(|| MeshIoError::Parse {
                    line: lineno,
                    message: format!("expected {} node ids", kind.num_nodes()),
                })?;
            if n as usize >= num_nodes {
                return Err(MeshIoError::Parse {
                    line: lineno,
                    message: format!("node id {n} out of range"),
                });
            }
            nodes.push(n);
        }
        elements.push(Element::new(kind, &nodes));
        body.push(b);
    }

    // Erosion state.
    let (lineno, eroded_line) = next()?;
    let num_eroded: usize =
        eroded_line.strip_prefix("eroded ").and_then(|d| d.parse().ok()).ok_or_else(|| {
            MeshIoError::Parse { line: lineno, message: "expected 'eroded <count>'".into() }
        })?;
    let mut mesh = Mesh::with_bodies(points, elements, body);
    for _ in 0..num_eroded {
        let (lineno, line) = next()?;
        let e: u32 = line.parse().map_err(|_| MeshIoError::Parse {
            line: lineno,
            message: "expected an element id".into(),
        })?;
        if e as usize >= num_elements {
            return Err(MeshIoError::Parse {
                line: lineno,
                message: format!("eroded element id {e} out of range"),
            });
        }
        mesh.erode(e);
    }
    Ok(mesh)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn roundtrip_3d_with_erosion() {
        let mut m = generators::hex_box([2, 2, 2], Point::new([0.0; 3]), [1.0; 3], 1);
        m.erode(3);
        let text = write_text(&m);
        let back: Mesh<3> = read_text(&text).unwrap();
        back.validate().unwrap();
        assert_eq!(back.num_nodes(), m.num_nodes());
        assert_eq!(back.num_elements(), m.num_elements());
        assert_eq!(back.alive, m.alive);
        assert_eq!(back.body, m.body);
        assert_eq!(back.points, m.points);
        for (a, b) in m.elements.iter().zip(back.elements.iter()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn roundtrip_2d() {
        let m = generators::quad_grid([3, 2], Point::new([0.5, -1.0]), [0.5, 2.0], 0);
        let back: Mesh<2> = read_text(&write_text(&m)).unwrap();
        assert_eq!(back.points, m.points);
        assert_eq!(back.num_elements(), 6);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "# a comment\n\ncipmesh 1\ndim 2\nnodes 3\n0 0\n1 0\n0 1\n\
                    # elements next\nelements 1\ntri3 2 0 1 2\neroded 0\n";
        let m: Mesh<2> = read_text(text).unwrap();
        assert_eq!(m.num_nodes(), 3);
        assert_eq!(m.body[0], 2);
    }

    #[test]
    fn bad_header_rejected() {
        assert_eq!(read_text::<2>("hello\n").err(), Some(MeshIoError::BadHeader));
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let text = "cipmesh 1\ndim 3\nnodes 0\nelements 0\neroded 0\n";
        assert_eq!(
            read_text::<2>(text).err(),
            Some(MeshIoError::DimensionMismatch { found: 3, expected: 2 })
        );
    }

    #[test]
    fn out_of_range_node_rejected() {
        let text = "cipmesh 1\ndim 2\nnodes 2\n0 0\n1 0\nelements 1\ntri3 0 0 1 7\neroded 0\n";
        match read_text::<2>(text) {
            Err(MeshIoError::Parse { message, .. }) => {
                assert!(message.contains("out of range"));
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn truncated_file_rejected() {
        let text = "cipmesh 1\ndim 2\nnodes 5\n0 0\n";
        assert_eq!(read_text::<2>(text).err(), Some(MeshIoError::UnexpectedEof));
    }

    #[test]
    fn error_display_is_informative() {
        let e = MeshIoError::Parse { line: 7, message: "boom".into() };
        assert_eq!(e.to_string(), "line 7: boom");
    }
}
