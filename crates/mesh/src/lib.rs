//! Finite-element mesh layer.
//!
//! This crate provides the mesh substrate of the contact/impact stack:
//!
//! * [`element`] — linear element types (Tri3/Quad4 in 2D, Tet4/Hex8 in 3D)
//!   with canonical face and edge enumerations,
//! * [`mesh`] — a multi-body mesh with node coordinates, an element-erosion
//!   mask (penetration deletes elements), and geometric queries,
//! * [`surface`] — boundary-surface extraction: the faces that belong to
//!   exactly one live element, which are the paper's *surface (contact)
//!   elements*, and their nodes, the *contact nodes*,
//! * [`graphs`] — nodal-graph and dual-graph construction (§2 of the
//!   paper), including the two-constraint vertex weights and boosted
//!   contact-edge weights of §4.2,
//! * [`generators`] — structured quad/hex box meshes used by the synthetic
//!   workload and the test suite,
//! * [`quality`] — element volume / aspect-ratio measures and mesh quality
//!   reports (erosion codes monitor these as cells distort),
//! * [`io`] — a small line-oriented text format for moving meshes in and
//!   out of the library.

pub mod element;
pub mod generators;
pub mod graphs;
pub mod io;
pub mod mesh;
mod proptests;
pub mod quality;
pub mod surface;

pub use element::{Element, ElementKind, Face};
pub use graphs::{dual_graph, nodal_graph, NodalGraph};
pub use io::{read_text, write_text, MeshIoError};
pub use mesh::Mesh;
pub use quality::{aspect_ratio, quality_report, QualityReport};
pub use surface::{extract_surface, Surface, SurfaceFace};
