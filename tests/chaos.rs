//! Chaos suite (DESIGN.md §6c): deterministic fault injection against the
//! step executor and the traced driver.
//!
//! Three families of guarantees:
//!
//! * **zero-cost arming** — an armed all-zero-rate plan produces output
//!   bit-identical to the disabled injector;
//! * **rank loss** — killing any rank makes the step fail with a typed
//!   [`RuntimeError::RankLost`] carrying the survivors' partial output,
//!   and the traced driver recovers by repartitioning over the survivors
//!   while still detecting exactly the clean run's contact pairs;
//! * **message faults** (proptest) — under random drop/duplicate/delay/
//!   reorder rates the repair protocol converges: the step succeeds, the
//!   detected pairs equal the serial oracle, and the traffic invariants
//!   (first-transmission halo volume, `Done` count) hold exactly.
//!
//! CI sweeps seeds without recompiling via the `CHAOS_SEED` env var: it
//! xor-perturbs every plan seed used here.

use cip::contact::{serial_contact_pairs, DtreeFilter};
use cip::core::{dt_friendly_correct, DtFriendlyConfig, SnapshotView};
use cip::dtree::{induce, DtreeConfig};
use cip::partition::{partition_kway, PartitionerConfig};
use cip::runtime::{
    build_decomposition, execute_step_with, ExecOptions, FaultInjector, FaultPlan, KillSpec,
    RuntimeError, StepInput, StepOutput,
};
use cip::sim::SimConfig;
use cip::trace::{run_traced, ChaosOptions, TraceOptions};
use proptest::prelude::*;
use std::time::Duration;

/// CI seed sweep: `CHAOS_SEED` perturbs every plan seed in this file.
fn env_seed() -> u64 {
    std::env::var("CHAOS_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(0)
}

struct Fixture {
    view: SnapshotView,
    node_parts: Vec<u32>,
    asg: Vec<u32>,
    k: usize,
}

fn fixture(k: usize, snapshot: usize) -> Fixture {
    let sim = cip::sim::run(&SimConfig::tiny());
    let view0 = SnapshotView::build(&sim, 0, 5);
    let mut asg = partition_kway(&view0.graph2.graph, k, &PartitionerConfig::default());
    let positions: Vec<_> =
        view0.graph2.node_of_vertex.iter().map(|&n| view0.mesh.points[n as usize]).collect();
    dt_friendly_correct(&view0.graph2.graph, &positions, k, &mut asg, &DtFriendlyConfig::default());
    let node_parts = view0.graph2.assignment_on_nodes(&asg);
    let view = SnapshotView::build(&sim, snapshot, 5);
    let asg_now: Vec<u32> =
        view.graph2.node_of_vertex.iter().map(|&n| node_parts[n as usize]).collect();
    Fixture { view, node_parts, asg: asg_now, k }
}

/// Executes one step under `opts`, also returning the serial oracle's
/// pairs and the decomposition's halo volume for invariant checks.
fn run_step(f: &Fixture, opts: &ExecOptions) -> (Result<StepOutput, RuntimeError>, StepOutput2) {
    let elements = f.view.surface_elements(&f.node_parts);
    let bodies = f.view.face_bodies();
    let owners: Vec<u32> = elements.iter().map(|e| e.owner).collect();
    let decomposition = build_decomposition(
        &f.view.graph2.graph,
        &f.view.graph2.node_of_vertex,
        &f.asg,
        &owners,
        f.k,
    );
    let labels = f.view.contact.labels_from_node_parts(&f.node_parts);
    let tree = induce(&f.view.contact.positions, &labels, f.k, &DtreeConfig::search_tree());
    let filter = DtreeFilter::new(&tree, f.k);
    let out = execute_step_with(
        &StepInput {
            decomposition: &decomposition,
            positions: &f.view.mesh.points,
            elements: &elements,
            bodies: &bodies,
            filter: &filter,
            tolerance: 0.4,
            recorder: cip::telemetry::Recorder::disabled(),
        },
        opts,
    );
    let oracle = StepOutput2 {
        serial: serial_contact_pairs(&elements, &bodies, 0.4),
        halo: decomposition.total_halo_volume(),
    };
    (out, oracle)
}

/// The side-band facts a chaos assertion needs.
struct StepOutput2 {
    serial: Vec<cip::contact::ContactPair>,
    halo: u64,
}

fn chaos_exec_options(fault: FaultInjector) -> ExecOptions {
    ExecOptions { timeout: Duration::from_millis(300), retries: 2, fault, ..ExecOptions::default() }
}

#[test]
fn armed_quiet_plan_is_bit_identical_to_disabled() {
    let f = fixture(3, 5);
    let (clean, _) = run_step(&f, &ExecOptions::default());
    let quiet = chaos_exec_options(FaultInjector::with_plan(FaultPlan::quiet(11 ^ env_seed())));
    let (armed, _) = run_step(&f, &quiet);
    assert_eq!(
        clean.expect("clean step executes"),
        armed.expect("quiet-armed step executes"),
        "arming the injector with zero rates must not change anything"
    );
}

#[test]
fn killing_each_rank_is_detected_and_survivors_report_partials() {
    for k in [2usize, 3, 4] {
        for victim in 0..k as u32 {
            let f = fixture(k, 5);
            let plan = FaultPlan {
                kill: Some(KillSpec { rank: victim, after_sends: 0 }),
                ..FaultPlan::quiet(5 ^ env_seed())
            };
            let opts = ExecOptions {
                timeout: Duration::from_millis(150),
                retries: 1,
                fault: FaultInjector::with_plan(plan),
                ..ExecOptions::default()
            };
            let (out, _) = run_step(&f, &opts);
            match out {
                Err(RuntimeError::RankLost { dead, partial }) => {
                    assert_eq!(dead, vec![victim], "k={k}");
                    // The dead rank sent nothing; survivors' rows exist.
                    let (h, s) = partial.traffic.sent_by(victim as usize);
                    assert_eq!((h, s), (0, 0), "k={k} victim={victim}");
                }
                other => panic!("k={k} victim={victim}: expected RankLost, got {other:?}"),
            }
        }
    }
}

#[test]
fn driver_recovers_from_any_single_rank_kill() {
    let clean = run_traced(&TraceOptions {
        scenario: "tiny".into(),
        k: 3,
        snapshots: Some(4),
        chaos: None,
        ..TraceOptions::default()
    })
    .expect("clean run");
    for victim in 0..3u32 {
        let opts = TraceOptions {
            scenario: "tiny".into(),
            k: 3,
            snapshots: Some(4),
            chaos: Some(ChaosOptions {
                seed: 13 ^ env_seed(),
                drop_permille: 0,
                dup_permille: 0,
                delay_permille: 0,
                reorder_permille: 0,
                kill: Some((1, victim)),
                timeout_ms: 300,
                retries: 2,
            }),
            ..TraceOptions::default()
        };
        let report = run_traced(&opts).expect("chaos run");
        assert_eq!(report.rank_losses, 1, "victim {victim}");
        assert!(report.repartitions >= 1, "victim {victim}");
        assert_eq!(
            report.contact_pairs, clean.contact_pairs,
            "victim {victim}: recovery must still detect every pair"
        );
        report.verify_totals().expect("counters equal executed traffic");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Dropped, duplicated, delayed and reordered messages are detected
    /// and repaired: the step succeeds, detection equals the serial
    /// oracle, and first-transmission traffic invariants hold exactly.
    #[test]
    fn message_faults_converge_to_the_fault_free_answer(
        seed in 0u64..1_000_000,
        drop in 0u16..=250,
        dup in 0u16..=150,
        delay in 0u16..=150,
        reorder in 0u16..=150,
    ) {
        let k = 3;
        let f = fixture(k, 5);
        let plan = FaultPlan {
            drop_permille: drop,
            dup_permille: dup,
            delay_permille: delay,
            reorder_permille: reorder,
            ..FaultPlan::quiet(seed ^ env_seed())
        };
        let opts = chaos_exec_options(FaultInjector::with_plan(plan));
        let (out, oracle) = run_step(&f, &opts);
        let out = out.expect("message faults alone must never fail the step");
        prop_assert_eq!(&out.contact_pairs, &oracle.serial);
        prop_assert_eq!(out.ghost_mismatches, 0);
        prop_assert_eq!(out.traffic.total_halo(), oracle.halo);
        prop_assert_eq!(out.traffic.phases.halo_units, oracle.halo);
        prop_assert_eq!(out.traffic.phases.done_msgs, (k * (k - 1)) as u64);
    }

    /// The traced driver under message chaos matches its clean twin on
    /// every executed total.
    #[test]
    fn traced_message_chaos_matches_clean_run(seed in 0u64..1_000_000) {
        let base = TraceOptions {
            scenario: "tiny".into(),
            k: 2,
            snapshots: Some(3),
            chaos: None,
            ..TraceOptions::default()
        };
        let clean = run_traced(&base).expect("clean run");
        let chaotic = run_traced(&TraceOptions {
            chaos: Some(ChaosOptions {
                seed: seed ^ env_seed(),
                drop_permille: 150,
                dup_permille: 80,
                delay_permille: 80,
                reorder_permille: 80,
                kill: None,
                timeout_ms: 300,
                retries: 2,
            }),
            ..base
        })
        .expect("chaos run");
        prop_assert_eq!(chaotic.rank_losses, 0);
        prop_assert_eq!(chaotic.contact_pairs, clean.contact_pairs);
        prop_assert_eq!(chaotic.halo, clean.halo);
        chaotic.verify_totals().expect("counters equal executed traffic");
    }
}
