//! Abrupt worker death (DESIGN.md §6e): a worker process that vanishes
//! *without reporting an outcome* — the `kill -9` case — must be
//! synthesized from control-channel EOF as a dead rank and recovered
//! like any other rank loss.
//!
//! This lives in its own test binary because the `CIP_WORKER_DIE` chaos
//! hook is a process-wide environment variable inherited by every pool
//! spawned from this process; isolating it here keeps the other
//! multi-process tests honest.

use cip::trace::{run_traced, ChaosOptions, TraceOptions, TransportKind};
use std::path::PathBuf;

fn env_seed() -> u64 {
    std::env::var("CHAOS_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(0)
}

#[test]
fn abrupt_worker_death_is_synthesized_from_eof_and_recovered() {
    // Worker #1 will exit(137) the moment its first batch arrives — no
    // Done frame, no clean shutdown.
    std::env::set_var("CIP_WORKER_DIE", "1");

    let base = TraceOptions {
        scenario: "tiny".into(),
        k: 3,
        snapshots: Some(4),
        repartition_period: Some(10),
        chaos: None,
        ..TraceOptions::default()
    };
    let clean = run_traced(&base).expect("in-process run");

    let opts = TraceOptions {
        transport: TransportKind::Workers {
            bind: "127.0.0.1:0".into(),
            worker_bin: Some(PathBuf::from(env!("CARGO_BIN_EXE_cip-worker"))),
        },
        // A quiet armed plan changes nothing about the output but gives
        // the survivors short drain timeouts, so they declare the
        // vanished peer dead in seconds rather than executor defaults.
        chaos: Some(ChaosOptions {
            seed: 3 ^ env_seed(),
            drop_permille: 0,
            dup_permille: 0,
            delay_permille: 0,
            reorder_permille: 0,
            kill: None,
            timeout_ms: 300,
            retries: 2,
        }),
        ..base
    };
    let report = run_traced(&opts).expect("driver recovers from the vanished worker");
    assert_eq!(report.rank_losses, 1, "the vanished worker is one lost rank");
    assert!(report.repartitions >= 1, "recovery repartitions over the survivors");
    assert_eq!(report.contact_pairs, clean.contact_pairs, "recovery must still detect every pair");
    report.verify_totals().expect("counters equal executed traffic");
}
