//! Thread-count invariance of the multilevel partitioner.
//!
//! The determinism contract (`DESIGN.md` "Threading model") says every
//! partitioner entry point is a pure function of `(graph, k, config)` —
//! the rayon pool size must never change a result. These tests run the
//! full drivers and the coarsening hierarchy under explicit pools of 1, 2,
//! and 8 threads and require identical output, with `parallel_threshold`
//! forced low so the parallel matcher and parallel contraction actually
//! run even on this modest grid.

use cip::graph::{edge_cut, Graph, GraphBuilder};
use cip::partition::{
    coarsen_with, partition_kway, partition_kway_multilevel, refine_kway, CoarsenParams,
    CoarsenWorkspace, PartitionerConfig,
};

/// Two-constraint grid: unit FE weight everywhere, contact weight on the
/// border (the paper's surface-node pattern).
fn grid2(nx: usize, ny: usize) -> Graph {
    let mut b = GraphBuilder::new(nx * ny, 2);
    let id = |i: usize, j: usize| (j * nx + i) as u32;
    for j in 0..ny {
        for i in 0..nx {
            let border = i == 0 || j == 0 || i == nx - 1 || j == ny - 1;
            b.set_vwgt(id(i, j), &[1, i64::from(border)]);
            if i + 1 < nx {
                b.add_edge(id(i, j), id(i + 1, j), 1);
            }
            if j + 1 < ny {
                b.add_edge(id(i, j), id(i, j + 1), 1);
            }
        }
    }
    b.build()
}

fn with_pool<T: Send>(threads: usize, f: impl FnOnce() -> T + Send) -> T {
    rayon::ThreadPoolBuilder::new().num_threads(threads).build().expect("pool").install(f)
}

const POOLS: [usize; 3] = [1, 2, 8];

#[test]
fn partition_kway_is_thread_count_invariant() {
    let g = grid2(48, 48);
    // Force the parallel coarsening path on every bisection sub-problem.
    let cfg = PartitionerConfig { parallel_threshold: 64, ..PartitionerConfig::with_seed(17) };
    for k in [4usize, 7] {
        let reference = with_pool(1, || partition_kway(&g, k, &cfg));
        for threads in POOLS {
            let asg = with_pool(threads, || partition_kway(&g, k, &cfg));
            assert_eq!(asg, reference, "k={k} differs at {threads} threads");
        }
    }
}

#[test]
fn partition_kway_multilevel_is_thread_count_invariant() {
    let g = grid2(48, 48);
    let cfg = PartitionerConfig { parallel_threshold: 64, ..PartitionerConfig::with_seed(29) };
    for k in [4usize, 9] {
        let reference = with_pool(1, || partition_kway_multilevel(&g, k, &cfg));
        for threads in POOLS {
            let asg = with_pool(threads, || partition_kway_multilevel(&g, k, &cfg));
            assert_eq!(asg, reference, "k={k} differs at {threads} threads");
        }
    }
}

/// The parallel propose-then-resolve k-way refinement sweep in isolation:
/// identical assignments at any pool size, and the cut never increases.
#[test]
fn parallel_kway_refinement_is_thread_count_invariant() {
    let g = grid2(48, 48);
    // Diagonal stripes: balanced but terrible cut (every vertex boundary
    // with a strictly positive best gain), so the sweep has real work.
    for k in [2usize, 5] {
        let start: Vec<u32> = (0..g.nv()).map(|v| (((v % 48) + (v / 48)) % k) as u32).collect();
        // threshold 0 forces the propose-then-resolve path on every pass.
        let cfg = PartitionerConfig { parallel_threshold: 0, ..PartitionerConfig::with_seed(41) };
        let cut_before = edge_cut(&g, &start);
        let reference = with_pool(1, || {
            let mut asg = start.clone();
            refine_kway(&g, k, &mut asg, &cfg);
            asg
        });
        assert!(edge_cut(&g, &reference) < cut_before, "k={k}: refinement should help");
        for threads in POOLS {
            let asg = with_pool(threads, || {
                let mut asg = start.clone();
                refine_kway(&g, k, &mut asg, &cfg);
                asg
            });
            assert_eq!(asg, reference, "k={k} differs at {threads} threads");
        }
    }
}

/// The coarsening hierarchy itself — maps and coarse graphs — must be
/// bit-identical at 1 vs N threads for a fixed seed.
#[test]
fn coarsen_hierarchy_is_bit_identical_across_pools() {
    let g = grid2(48, 48);
    let params = CoarsenParams { parallel_threshold: 0, ..CoarsenParams::new(40, 123) };
    let reference = with_pool(1, || coarsen_with(&g, &params, &mut CoarsenWorkspace::new()));
    assert!(!reference.is_empty(), "grid should coarsen");
    for threads in POOLS {
        let h = with_pool(threads, || coarsen_with(&g, &params, &mut CoarsenWorkspace::new()));
        assert_eq!(h.len(), reference.len(), "level count differs at {threads} threads");
        for (lvl, (a, b)) in h.levels.iter().zip(reference.levels.iter()).enumerate() {
            assert_eq!(a.map, b.map, "map differs at level {lvl}, {threads} threads");
            assert_eq!(a.graph.xadj(), b.graph.xadj(), "xadj differs at level {lvl}");
            assert_eq!(a.graph.adjncy(), b.graph.adjncy(), "adjncy differs at level {lvl}");
            assert_eq!(a.graph.adjwgt(), b.graph.adjwgt(), "adjwgt differs at level {lvl}");
            assert_eq!(a.graph.vwgt_raw(), b.graph.vwgt_raw(), "vwgt differs at level {lvl}");
        }
    }
}
