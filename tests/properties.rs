//! Cross-crate property-based tests (proptest): the invariants the whole
//! system rests on, exercised on randomized inputs.

use cip::dtree::{induce, DtreeConfig, StopRule};
use cip::geom::{Aabb, Point, RcbTree};
use cip::graph::{contract, edge_cut, GraphBuilder, Partition};
use cip::partition::{
    balance_kway, max_weight_assignment, partition_kway, refine_kway, PartitionerConfig,
};
use proptest::prelude::*;

/// Random small point clouds with labels.
fn points_and_labels(max_pts: usize, k: usize) -> impl Strategy<Value = (Vec<Point<2>>, Vec<u32>)> {
    proptest::collection::vec(((-100i32..100), (-100i32..100), 0u32..k as u32), 1..max_pts)
        .prop_map(|v| {
            let pts = v.iter().map(|&(x, y, _)| Point::new([x as f64, y as f64])).collect();
            let labels = v.iter().map(|&(_, _, l)| l).collect();
            (pts, labels)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every point is located in a leaf; with the purity rule, a point at a
    /// unique position must be located in a leaf of its own label.
    #[test]
    fn dtree_locates_unique_points_in_their_own_partition(
        (pts, labels) in points_and_labels(60, 4)
    ) {
        let tree = induce(&pts, &labels, 4, &DtreeConfig::search_tree());
        for (i, p) in pts.iter().enumerate() {
            // Skip positions shared by points of different labels —
            // no axis-parallel tree can separate identical coordinates.
            let clash = pts.iter().zip(labels.iter()).any(|(q, &l)| {
                q == p && l != labels[i]
            });
            if !clash {
                prop_assert_eq!(tree.locate(p), labels[i]);
            }
        }
    }

    /// Box queries are a superset filter: every label owning a point inside
    /// the query box is reported.
    #[test]
    fn dtree_box_query_never_misses(
        (pts, labels) in points_and_labels(60, 4),
        qx in -100i32..100, qy in -100i32..100, w in 1i32..80, h in 1i32..80
    ) {
        let tree = induce(&pts, &labels, 4, &DtreeConfig::search_tree());
        let q = Aabb::new(
            Point::new([qx as f64, qy as f64]),
            Point::new([(qx + w) as f64, (qy + h) as f64]),
        );
        let mut out = Vec::new();
        tree.query_box(&q, &mut out);
        for (p, &l) in pts.iter().zip(labels.iter()) {
            if q.contains_point(p) {
                prop_assert!(out.contains(&l));
            }
        }
    }

    /// The max_p/max_i tree respects its leaf-size contract.
    #[test]
    fn dtree_maxp_bounds_pure_leaf_sizes(
        (pts, labels) in points_and_labels(80, 3),
        max_p in 2usize..20
    ) {
        let cfg = DtreeConfig {
            stop: StopRule::MaxPMaxI { max_p, max_i: 1 },
            ..DtreeConfig::default()
        };
        let tree = induce(&pts, &labels, 3, &cfg);
        let bounds = Aabb::from_points(&pts);
        for leaf in tree.leaf_regions(&bounds) {
            if leaf.pure && leaf.count as usize > max_p {
                // Oversized pure leaves are only allowed when the points are
                // geometrically inseparable (identical coordinates).
                let inside: Vec<&Point<2>> =
                    pts.iter().filter(|p| leaf.region.contains_point(p)).collect();
                let first = inside[0];
                prop_assert!(
                    inside.iter().all(|p| *p == first),
                    "oversized pure leaf with separable points"
                );
            }
        }
    }

    /// RCB produces a disjoint exact cover with every part non-empty (when
    /// there are at least k distinct points).
    #[test]
    fn rcb_covers_and_balances(
        pts in proptest::collection::vec((-1000i32..1000, -1000i32..1000), 20..200),
        k in 2usize..8
    ) {
        let points: Vec<Point<2>> =
            pts.iter().map(|&(x, y)| Point::new([x as f64, y as f64])).collect();
        let weights = vec![1.0; points.len()];
        let (tree, asg) = RcbTree::build(&points, &weights, k);
        // Assignment and locate agree.
        for (i, p) in points.iter().enumerate() {
            prop_assert_eq!(tree.locate(p), asg[i]);
        }
        // All parts in range.
        prop_assert!(asg.iter().all(|&p| (p as usize) < k));
        // Regions tile the bounding box.
        let bounds = Aabb::from_points(&points);
        let regions = tree.regions(&bounds);
        let vol: f64 = regions.iter().map(|(_, b)| b.volume().max(0.0)).sum();
        prop_assert!((vol - bounds.volume()).abs() < 1e-6 * bounds.volume().max(1.0));
    }

    /// Contraction preserves total vertex weight and the cut of any
    /// projected partition.
    #[test]
    fn contraction_preserves_weight_and_cut(
        edges in proptest::collection::vec((0u32..12, 0u32..12, 1i64..5), 1..40),
        groups in proptest::collection::vec(0u32..5, 12)
    ) {
        let mut b = GraphBuilder::new(12, 1);
        for v in 0..12u32 {
            b.set_vwgt(v, &[1 + (v as i64 % 3)]);
        }
        for &(u, v, w) in &edges {
            if u != v {
                b.add_edge(u, v, w);
            }
        }
        let g = b.build();
        // Densify group ids.
        let mut dense = groups.clone();
        let mut ids: Vec<u32> = dense.clone();
        ids.sort_unstable();
        ids.dedup();
        for d in dense.iter_mut() {
            *d = ids.iter().position(|&x| x == *d).unwrap() as u32;
        }
        let cnv = ids.len();
        let cg = contract(&g, &dense, cnv);
        prop_assert_eq!(cg.total_vwgt(), g.total_vwgt());
        // Any coarse 2-coloring projects with equal cut.
        let coarse_asg: Vec<u32> = (0..cnv as u32).map(|c| c % 2).collect();
        let fine_asg: Vec<u32> = dense.iter().map(|&c| coarse_asg[c as usize]).collect();
        prop_assert_eq!(edge_cut(&cg, &coarse_asg), edge_cut(&g, &fine_asg));
    }

    /// k-way refinement never increases the edge-cut.
    #[test]
    fn refinement_never_increases_cut(
        seed in 0u64..1000,
        k in 2usize..5
    ) {
        // Grid graph with a random-ish starting assignment.
        let n = 10usize;
        let mut b = GraphBuilder::new(n * n, 1);
        let id = |i: usize, j: usize| (j * n + i) as u32;
        for j in 0..n {
            for i in 0..n {
                b.set_vwgt(id(i, j), &[1]);
                if i + 1 < n { b.add_edge(id(i, j), id(i + 1, j), 1); }
                if j + 1 < n { b.add_edge(id(i, j), id(i, j + 1), 1); }
            }
        }
        let g = b.build();
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut asg: Vec<u32> = (0..n * n).map(|_| {
            state ^= state << 13; state ^= state >> 7; state ^= state << 17;
            (state % k as u64) as u32
        }).collect();
        let before = edge_cut(&g, &asg);
        let cfg = PartitionerConfig::with_seed(seed);
        refine_kway(&g, k, &mut asg, &cfg);
        prop_assert!(edge_cut(&g, &asg) <= before);
        prop_assert!(asg.iter().all(|&p| (p as usize) < k));
    }

    /// Balancing brings every constraint within tolerance on graphs where
    /// that is achievable (unit weights, k | n).
    #[test]
    fn balancing_restores_feasibility(seed in 0u64..500) {
        let n = 12usize;
        let k = 4usize;
        let mut b = GraphBuilder::new(n * n, 1);
        let id = |i: usize, j: usize| (j * n + i) as u32;
        for j in 0..n {
            for i in 0..n {
                b.set_vwgt(id(i, j), &[1]);
                if i + 1 < n { b.add_edge(id(i, j), id(i + 1, j), 1); }
                if j + 1 < n { b.add_edge(id(i, j), id(i, j + 1), 1); }
            }
        }
        let g = b.build();
        // Pathological start: everything in part 0.
        let mut asg = vec![0u32; n * n];
        // Give other parts a seed vertex so they are adjacent-reachable.
        asg[0] = 1; asg[1] = 2; asg[2] = 3;
        let cfg = PartitionerConfig::with_seed(seed);
        balance_kway(&g, k, &mut asg, &cfg);
        let p = Partition::from_assignment(&g, k, asg);
        prop_assert!(p.imbalance(0) <= 1.06, "imbalance {}", p.imbalance(0));
    }

    /// Hungarian assignment returns a permutation and dominates the
    /// identity and reversal assignments.
    #[test]
    fn hungarian_dominates_trivial_assignments(
        w in proptest::collection::vec(0i64..100, 25)
    ) {
        let n = 5;
        let a = max_weight_assignment(n, &w);
        let mut seen = vec![false; n];
        for &c in &a { prop_assert!(!seen[c]); seen[c] = true; }
        let weight = |asg: &[usize]| -> i64 {
            asg.iter().enumerate().map(|(r, &c)| w[r * n + c]).sum()
        };
        let identity: Vec<usize> = (0..n).collect();
        let reverse: Vec<usize> = (0..n).rev().collect();
        prop_assert!(weight(&a) >= weight(&identity));
        prop_assert!(weight(&a) >= weight(&reverse));
    }

    /// The full multilevel partitioner produces valid, reasonably balanced
    /// partitions on random-sized grids.
    #[test]
    fn partitioner_output_is_valid(nx in 6usize..14, ny in 6usize..14, k in 2usize..6) {
        let mut b = GraphBuilder::new(nx * ny, 1);
        let id = |i: usize, j: usize| (j * nx + i) as u32;
        for j in 0..ny {
            for i in 0..nx {
                b.set_vwgt(id(i, j), &[1]);
                if i + 1 < nx { b.add_edge(id(i, j), id(i + 1, j), 1); }
                if j + 1 < ny { b.add_edge(id(i, j), id(i, j + 1), 1); }
            }
        }
        let g = b.build();
        let asg = partition_kway(&g, k, &PartitionerConfig::default());
        prop_assert_eq!(asg.len(), g.nv());
        prop_assert!(asg.iter().all(|&p| (p as usize) < k));
        let p = Partition::from_assignment(&g, k, asg);
        for part in 0..k as u32 {
            prop_assert!(p.part_size(part) > 0, "part {} empty", part);
        }
        prop_assert!(p.imbalance(0) <= 1.35, "imbalance {}", p.imbalance(0));
    }
}
