//! End-to-end verification of the paper's central correctness claim on
//! real simulation data: the *distributed* contact detection (ship
//! elements per the global-search filter, search locally per rank) finds
//! exactly the same contact pairs as a serial search over the whole
//! surface.

use cip::contact::{
    distributed_contact_pairs, serial_contact_pairs, DtreeFilter, RcbRegionFilter,
    SurfaceElementInfo,
};
use cip::core::SnapshotView;
use cip::dtree::{induce, DtreeConfig};
use cip::geom::RcbTree;
use cip::partition::{partition_kway, PartitionerConfig};
use cip::sim::SimConfig;

/// Surface elements + bodies of one snapshot under a node partition.
fn snapshot_elements(
    view: &SnapshotView,
    node_parts: &[u32],
) -> (Vec<SurfaceElementInfo<3>>, Vec<u16>) {
    (view.surface_elements(node_parts), view.face_bodies())
}

#[test]
fn distributed_detection_equals_serial_with_dtree_filter() {
    let sim = cip::sim::run(&SimConfig::tiny());
    let k = 4;
    let view0 = SnapshotView::build(&sim, 0, 5);
    let asg = partition_kway(&view0.graph2.graph, k, &PartitionerConfig::default());
    let node_parts = view0.graph2.assignment_on_nodes(&asg);

    for i in [2, sim.len() / 2, sim.len() - 1] {
        let view = SnapshotView::build(&sim, i, 5);
        let labels = view.contact.labels_from_node_parts(&node_parts);
        let tree = induce(&view.contact.positions, &labels, k, &DtreeConfig::search_tree());
        let filter = DtreeFilter::new(&tree, k);

        let (elements, bodies) = snapshot_elements(&view, &node_parts);
        let tolerance = 0.4;
        let serial = serial_contact_pairs(&elements, &bodies, tolerance);
        let distributed = distributed_contact_pairs(&elements, &bodies, &filter, tolerance);
        assert_eq!(
            distributed, serial,
            "snapshot {i}: distributed search must find exactly the serial pairs"
        );
    }
}

#[test]
fn distributed_detection_equals_serial_with_rcb_filter() {
    let sim = cip::sim::run(&SimConfig::tiny());
    let k = 5;
    let i = sim.len() / 2;
    let view = SnapshotView::build(&sim, i, 5);

    // ML+RCB-style: contact decomposition by RCB, region filter.
    let weights = vec![1.0; view.contact.len()];
    let (tree, rcb_labels) = RcbTree::build(&view.contact.positions, &weights, k);
    let mut rcb_node_parts = vec![u32::MAX; view.mesh.num_nodes()];
    for (ci, &n) in view.contact.nodes.iter().enumerate() {
        rcb_node_parts[n as usize] = rcb_labels[ci];
    }
    let (elements, bodies) = snapshot_elements(&view, &rcb_node_parts);
    let filter = RcbRegionFilter::new(&tree);
    let tolerance = 0.4;
    let serial = serial_contact_pairs(&elements, &bodies, tolerance);
    let distributed = distributed_contact_pairs(&elements, &bodies, &filter, tolerance);
    assert_eq!(distributed, serial);
}

#[test]
fn real_contacts_appear_mid_penetration() {
    // Sanity for the tests above: the workload actually produces
    // cross-body contact pairs once the projectile reaches the plates.
    let sim = cip::sim::run(&SimConfig::tiny());
    let view = SnapshotView::build(&sim, sim.len() / 2, 5);
    let node_parts = vec![0u32; view.mesh.num_nodes()];
    let (elements, bodies) = snapshot_elements(&view, &node_parts);
    let serial = serial_contact_pairs(&elements, &bodies, 0.4);
    assert!(!serial.is_empty(), "projectile inside the plate must produce contact pairs");
}
