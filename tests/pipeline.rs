//! End-to-end integration tests: both pipelines over a full synthetic
//! simulation, checking the cross-crate invariants the paper's comparison
//! rests on.

use cip::core::{
    average_metrics, evaluate_mcml_dt, evaluate_ml_rcb, McmlDtConfig, MlRcbConfig, UpdatePolicy,
};
use cip::partition::PartitionerConfig;
use cip::sim::SimConfig;

fn sim() -> cip::sim::SimResult {
    cip::sim::run(&SimConfig::tiny())
}

#[test]
fn both_pipelines_cover_every_snapshot_with_positive_communication() {
    let s = sim();
    let k = 4;
    let (mc, _) = evaluate_mcml_dt(&s, &McmlDtConfig::paper(k));
    let ml = evaluate_ml_rcb(&s, &MlRcbConfig::paper(k));
    assert_eq!(mc.len(), s.len());
    assert_eq!(ml.len(), s.len());
    for (a, b) in mc.iter().zip(ml.iter()) {
        assert_eq!(a.step, b.step, "pipelines must evaluate the same snapshots");
        assert_eq!(a.contact_points, b.contact_points);
        assert_eq!(a.surface_elements, b.surface_elements);
        assert!(a.fe_comm > 0 && b.fe_comm > 0);
    }
}

#[test]
fn mcml_dt_has_no_m2m_and_ml_rcb_builds_no_tree() {
    let s = sim();
    let (mc, _) = evaluate_mcml_dt(&s, &McmlDtConfig::paper(4));
    let ml = evaluate_ml_rcb(&s, &MlRcbConfig::paper(4));
    assert!(mc.iter().all(|m| m.m2m_comm == 0));
    assert!(ml.iter().all(|m| m.nt_nodes == 0));
    // The baseline must pay a mesh-to-mesh cost somewhere in the sequence.
    assert!(ml.iter().map(|m| m.m2m_comm).sum::<u64>() > 0);
}

#[test]
fn table1_shape_ml_rcb_wins_fe_comm_but_pays_m2m() {
    // The paper's central comparison: the single-constraint baseline gets
    // a lower FEComm (one constraint is easier than two), but once the
    // M2M transfer is counted twice, MCML+DT's total is competitive.
    let s = sim();
    let k = 4;
    let (mc, _) = evaluate_mcml_dt(&s, &McmlDtConfig::paper(k));
    let ml = evaluate_ml_rcb(&s, &MlRcbConfig::paper(k));
    let a = average_metrics(&mc);
    let b = average_metrics(&ml);
    assert!(
        b.fe_comm <= a.fe_comm * 1.05,
        "single-constraint FEComm ({}) should not exceed two-constraint ({})",
        b.fe_comm,
        a.fe_comm
    );
    assert!(
        b.non_search_comm() > b.fe_comm,
        "the baseline's total must include a nonzero M2M term"
    );
}

#[test]
fn sequence_metrics_follow_the_penetration() {
    // As craters open, the contact set grows; NTNodes and NRemote should
    // not collapse to zero mid-sequence.
    let s = sim();
    let (mc, _) = evaluate_mcml_dt(&s, &McmlDtConfig::paper(4));
    let peak_contacts = mc.iter().map(|m| m.contact_points).max().unwrap();
    assert!(peak_contacts > mc[0].contact_points, "contact set must grow");
    assert!(mc.iter().all(|m| m.nt_nodes >= 1));
}

#[test]
fn update_policies_are_consistent_on_snapshot_zero() {
    let s = sim();
    let fixed = McmlDtConfig::paper(3);
    let per_step = McmlDtConfig { update: UpdatePolicy::PerStep, ..McmlDtConfig::paper(3) };
    let (m_fixed, _) = evaluate_mcml_dt(&s, &fixed);
    let (m_step, _) = evaluate_mcml_dt(&s, &per_step);
    // Snapshot 0 is identical under every policy (no update happened yet).
    assert_eq!(m_fixed[0].fe_comm, m_step[0].fe_comm);
    assert_eq!(m_fixed[0].nt_nodes, m_step[0].nt_nodes);
    assert_eq!(m_fixed[0].n_remote, m_step[0].n_remote);
}

#[test]
fn pipelines_are_deterministic() {
    let s = sim();
    let cfg =
        McmlDtConfig { partitioner: PartitionerConfig::with_seed(7), ..McmlDtConfig::paper(4) };
    let (a, _) = evaluate_mcml_dt(&s, &cfg);
    let (b, _) = evaluate_mcml_dt(&s, &cfg);
    for (x, y) in a.iter().zip(b.iter()) {
        assert_eq!(x.fe_comm, y.fe_comm);
        assert_eq!(x.nt_nodes, y.nt_nodes);
        assert_eq!(x.n_remote, y.n_remote);
    }
}

#[test]
fn different_k_scale_communication_up() {
    let s = sim();
    let (k2, _) = evaluate_mcml_dt(&s, &McmlDtConfig::paper(2));
    let (k8, _) = evaluate_mcml_dt(&s, &McmlDtConfig::paper(8));
    let a2 = average_metrics(&k2);
    let a8 = average_metrics(&k8);
    assert!(a8.fe_comm > a2.fe_comm, "more parts -> more halo exchange");
    assert!(a8.nt_nodes >= a2.nt_nodes, "more parts -> bigger search tree");
}
