//! Pipelined-vs-barrier oracle suite (DESIGN.md §6d).
//!
//! The pipelined batch executor overlaps halo sends, shipments, and
//! contact searches across ranks *and* adjacent steps — but it must be
//! a pure scheduling change. This suite proves it end to end through
//! the traced driver: same scenario, same seeds, multi-step sequences
//! with diffusion repartitioning (and therefore migration) in the
//! middle, and the two schedules must agree on **every executed total**
//! — halo units, element shipments, migrated nodes, contact pairs,
//! repartition count — at 1, 2, and 8 ranks. Chaos variants repeat the
//! comparison under seeded message faults (CI sweeps seeds 7/21/1337
//! via `CHAOS_SEED`), and a kill variant checks that a rank lost
//! mid-batch still yields a typed recovery identical to the barrier
//! driver's.

use cip::runtime::Schedule;
use cip::trace::{run_traced, ChaosOptions, TraceOptions, TraceReport};

/// CI seed sweep: `CHAOS_SEED` perturbs every chaos seed in this file.
fn env_seed() -> u64 {
    std::env::var("CHAOS_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(0)
}

/// A tiny run with repartitioning mid-sequence (period 3 over 7 steps →
/// migration happens inside the batched region, exercising the
/// migration barrier between pipelined batches).
fn opts(k: usize, schedule: Schedule) -> TraceOptions {
    TraceOptions {
        scenario: "tiny".into(),
        k,
        snapshots: Some(7),
        repartition_period: Some(3),
        schedule,
        ..TraceOptions::default()
    }
}

/// Every executed total the driver accumulates, as one comparable value.
fn totals(r: &TraceReport) -> (usize, u64, u64, u64, u64, usize, usize) {
    (r.steps, r.halo, r.shipments, r.migrated, r.contact_pairs, r.repartitions, r.rank_losses)
}

#[test]
fn schedules_agree_on_all_totals_across_rank_counts() {
    for k in [1usize, 2, 8] {
        let barrier = run_traced(&opts(k, Schedule::Barrier)).expect("barrier run");
        let piped = run_traced(&opts(k, Schedule::pipelined())).expect("pipelined run");
        assert_eq!(totals(&piped), totals(&barrier), "k={k}");
        assert_eq!(piped.rank_losses, 0, "k={k}");
        barrier.verify_totals().expect("barrier counters equal executed traffic");
        piped.verify_totals().expect("pipelined counters equal executed traffic");
    }
}

#[test]
fn lookahead_depth_does_not_change_the_answer() {
    let oracle = run_traced(&opts(4, Schedule::Barrier)).expect("barrier run");
    for lookahead in [1usize, 2, 4] {
        let piped = run_traced(&opts(4, Schedule::Pipelined { lookahead })).expect("pipelined run");
        assert_eq!(totals(&piped), totals(&oracle), "lookahead={lookahead}");
    }
}

#[test]
fn schedules_agree_under_message_chaos() {
    for seed in [7u64, 21, 1337] {
        let chaos = ChaosOptions {
            seed: seed ^ env_seed(),
            drop_permille: 150,
            dup_permille: 80,
            delay_permille: 80,
            reorder_permille: 80,
            kill: None,
            timeout_ms: 300,
            retries: 2,
        };
        let barrier =
            run_traced(&TraceOptions { chaos: Some(chaos.clone()), ..opts(2, Schedule::Barrier) })
                .expect("barrier chaos run");
        let piped =
            run_traced(&TraceOptions { chaos: Some(chaos), ..opts(2, Schedule::pipelined()) })
                .expect("pipelined chaos run");
        assert_eq!(totals(&piped), totals(&barrier), "seed {seed}");
        assert_eq!(piped.rank_losses, 0, "seed {seed}: faults repair, nobody dies");
    }
}

#[test]
fn kill_mid_batch_recovers_identically_under_both_schedules() {
    let chaos = ChaosOptions {
        seed: 13 ^ env_seed(),
        drop_permille: 0,
        dup_permille: 0,
        delay_permille: 0,
        reorder_permille: 0,
        kill: Some((2, 1)),
        timeout_ms: 300,
        retries: 2,
    };
    let barrier =
        run_traced(&TraceOptions { chaos: Some(chaos.clone()), ..opts(3, Schedule::Barrier) })
            .expect("barrier kill run recovers");
    let piped = run_traced(&TraceOptions { chaos: Some(chaos), ..opts(3, Schedule::pipelined()) })
        .expect("pipelined kill run recovers");
    assert_eq!(barrier.rank_losses, 1);
    assert_eq!(piped.rank_losses, 1);
    assert!(piped.repartitions >= 1, "the driver repartitioned over the survivors");
    // Recovery repartitions over the survivors, so post-kill decomposition
    // traffic is schedule-independent too: every total must still agree.
    assert_eq!(totals(&piped), totals(&barrier));
    piped.verify_totals().expect("pipelined counters equal executed traffic");
}
