//! Integration tests for the §4.3 maintenance machinery on real
//! simulation data: incremental tree refresh, diffusion repartitioning
//! inside the pipeline, and automatic hybrid-period selection.

use cip::contact::{global_search, DtreeFilter};
use cip::core::{
    evaluate_mcml_dt, select_hybrid_period, CostModel, McmlDtConfig, RepartitionMethod,
    SnapshotView, UpdatePolicy,
};
use cip::dtree::{induce, refresh, DecisionTree, DtreeConfig};
use cip::partition::{partition_kway, PartitionerConfig};
use cip::sim::SimConfig;

#[test]
fn refreshed_trees_remain_complete_filters_across_the_sequence() {
    let sim = cip::sim::run(&SimConfig::tiny());
    let k = 4;
    let view0 = SnapshotView::build(&sim, 0, 5);
    let asg = partition_kway(&view0.graph2.graph, k, &PartitionerConfig::default());
    let node_parts = view0.graph2.assignment_on_nodes(&asg);

    let cfg = DtreeConfig::search_tree();
    let mut tree: Option<DecisionTree<3>> = None;
    for i in 0..sim.len() {
        let view = SnapshotView::build(&sim, i, 5);
        let labels = view.contact.labels_from_node_parts(&node_parts);
        tree = Some(match tree {
            None => induce(&view.contact.positions, &labels, k, &cfg),
            Some(prev) => refresh(&prev, &view.contact.positions, &labels, k, &cfg).0,
        });
        let t = tree.as_ref().unwrap();

        // Completeness of the refreshed filter: for every element, every
        // part owning a contact point inside its bbox must be reported.
        let filter = DtreeFilter::new(t, k);
        let elements = view.surface_elements(&node_parts);
        let plans = global_search(&elements, &filter);
        for (e, el) in elements.iter().enumerate() {
            for (ci, p) in view.contact.positions.iter().enumerate() {
                if el.bbox.contains_point(p) {
                    let part = labels[ci];
                    assert!(
                        part == el.owner || plans[e].contains(&part),
                        "snapshot {i}: refreshed filter missed part {part}"
                    );
                }
            }
        }
    }
}

#[test]
fn refresh_redoes_little_work_between_adjacent_snapshots() {
    let sim = cip::sim::run(&SimConfig::tiny());
    let k = 3;
    let view0 = SnapshotView::build(&sim, 0, 5);
    let asg = partition_kway(&view0.graph2.graph, k, &PartitionerConfig::default());
    let node_parts = view0.graph2.assignment_on_nodes(&asg);
    let cfg = DtreeConfig::search_tree();

    let va = SnapshotView::build(&sim, 4, 5);
    let vb = SnapshotView::build(&sim, 5, 5);
    let la = va.contact.labels_from_node_parts(&node_parts);
    let lb = vb.contact.labels_from_node_parts(&node_parts);
    let tree_a = induce(&va.contact.positions, &la, k, &cfg);
    let (_, stats) = refresh(&tree_a, &vb.contact.positions, &lb, k, &cfg);
    let frac = stats.reinduced_points as f64 / vb.contact.len().max(1) as f64;
    assert!(frac < 0.5, "adjacent snapshots should reuse most of the tree (re-induced {frac:.2})");
}

#[test]
fn diffusion_repartitioning_pipeline_matches_scratch_on_metrics_shape() {
    let sim = cip::sim::run(&SimConfig::tiny());
    let base =
        McmlDtConfig { update: UpdatePolicy::Hybrid { period: 4 }, ..McmlDtConfig::paper(3) };
    let scratch =
        McmlDtConfig { repartition_method: RepartitionMethod::ScratchRemap, ..base.clone() };
    let diffusion = McmlDtConfig { repartition_method: RepartitionMethod::Diffusion, ..base };
    let (ms, _) = evaluate_mcml_dt(&sim, &scratch);
    let (md, _) = evaluate_mcml_dt(&sim, &diffusion);
    assert_eq!(ms.len(), md.len());
    // Diffusion must migrate no more contact points than scratch-remap in
    // total (that is its purpose).
    let sum = |m: &[cip::core::SnapshotMetrics]| m.iter().map(|x| x.upd_comm).sum::<u64>();
    assert!(sum(&md) <= sum(&ms), "diffusion migrated {} vs scratch {}", sum(&md), sum(&ms));
    // Both keep the FE phase balanced at the end.
    assert!(md.last().unwrap().imbalance_fe <= 1.25);
}

#[test]
fn policy_selection_is_deterministic_and_consistent() {
    let sim = cip::sim::run(&SimConfig::tiny());
    let base = McmlDtConfig::paper(3);
    let model = CostModel::default();
    let a = select_hybrid_period(&sim, &base, &[5], &model);
    let b = select_hybrid_period(&sim, &base, &[5], &model);
    assert_eq!(a.period, b.period);
    assert_eq!(a.costs, b.costs);
    // The reported cost of the chosen policy matches an independent
    // evaluation.
    let cfg = if a.period == 0 {
        McmlDtConfig { update: UpdatePolicy::Fixed, ..base.clone() }
    } else {
        McmlDtConfig { update: UpdatePolicy::Hybrid { period: a.period }, ..base.clone() }
    };
    let (metrics, _) = evaluate_mcml_dt(&sim, &cfg);
    let direct = model.total_cost(&metrics);
    let reported = a.costs.iter().find(|(p, _)| *p == a.period).unwrap().1;
    assert!((direct - reported).abs() < 1e-6 * direct.max(1.0));
}
