//! Service resilience suite (DESIGN.md §6h): the job tier under a
//! seeded chaos proxy and hostile control frames.
//!
//! Three families of guarantees:
//!
//! * **recovery bit-identity** — with a seeded [`ChaosProxy`] injuring
//!   the client↔server wire (delays, mid-frame truncations, closes),
//!   a retrying client still lands every job and the totals are
//!   byte-identical to the clean in-process oracle — the retry path
//!   cannot change results, only repeat work the content-hash cache
//!   then deduplicates;
//! * **typed failure, no hangs** — a close-everything proxy with
//!   retries disabled surfaces a typed [`ServerError`] promptly; a
//!   retry budget that runs dry surfaces `RetriesExhausted`;
//! * **control-frame corruption** (proptest, mirroring
//!   `tests/transport.rs`) — every prefix truncation, every single-bit
//!   flip, and hostile length fields of a [`JobMsg`] frame are rejected
//!   typed, never a panic; a live server counts corrupt frames, drops
//!   the connection, and keeps serving.
//!
//! CI sweeps seeds without recompiling via the `CHAOS_SEED` env var
//! (the `server-chaos` job runs ≥3 seeds).

use cip::server::{Client, ClientConfig, JobOutcome, Server, ServerConfig, ServerError};
use cip::service::{JobRequest, TraceJobRunner, TraceTotals};
use cip::trace::{run_traced, TraceOptions};
use cip_server::protocol::JobMsg;
use cip_telemetry::Recorder;
use cip_transport::chaos::{ChaosPlan, ChaosProxy};
use cip_transport::frame::{decode_frame, encode_frame};
use cip_transport::{WireError, MAX_PAYLOAD};
use proptest::prelude::*;
use std::time::{Duration, Instant};

/// CI seed sweep: `CHAOS_SEED` perturbs every seed in this file.
fn env_seed() -> u64 {
    std::env::var("CHAOS_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(0)
}

fn tiny_opts(k: usize, seed: u64) -> TraceOptions {
    TraceOptions::builder()
        .scenario("tiny")
        .k(k)
        .seed(seed)
        .repartition_period(Some(2))
        .build()
        .expect("valid options")
}

fn oracle_totals(opts: &TraceOptions) -> TraceTotals {
    let report = run_traced(opts).expect("oracle run succeeds");
    report.verify_totals().expect("oracle totals are conserved");
    TraceTotals::from_report(&report)
}

fn start_server(workers: usize) -> (Server<TraceJobRunner>, Recorder) {
    let rec = Recorder::enabled();
    let cfg = ServerConfig {
        workers,
        job_deadline: Some(Duration::from_secs(30)),
        recorder: rec.clone(),
        ..ServerConfig::default()
    };
    let server = Server::start(TraceJobRunner, &cfg).expect("server starts");
    (server, rec)
}

/// A retry policy tuned for tests: fast backoff, plenty of attempts, a
/// read timeout large enough for a tiny trace but small enough that a
/// stalled or severed wire turns around quickly.
fn retrying(seed: u64) -> ClientConfig {
    ClientConfig {
        connect_timeout: Duration::from_secs(5),
        read_timeout: Some(Duration::from_secs(10)),
        retries: 12,
        backoff_base: Duration::from_millis(10),
        backoff_max: Duration::from_millis(200),
        seed,
    }
}

// ---------------------------------------------------------------------
// ChaosProxy: recovered results are bit-identical to the oracle
// ---------------------------------------------------------------------

/// The acceptance sweep: for each seed, a proxy injuring the wire with
/// delays, mid-frame truncations, and closes sits between a retrying
/// client and the server. Every job must come back `Done` with totals
/// byte-identical to the in-process oracle.
#[test]
fn chaos_proxy_sweep_recovers_bit_identical_totals() {
    let mixes = [tiny_opts(2, 5), tiny_opts(3, 7), tiny_opts(2, 42)];
    let oracles: Vec<TraceTotals> = mixes.iter().map(oracle_totals).collect();
    let (server, _rec) = start_server(2);

    for &seed in &[7u64, 21, 1337] {
        let seed = seed ^ env_seed();
        let plan = ChaosPlan {
            delay_permille: 60,
            truncate_permille: 25,
            close_permille: 25,
            delay: Duration::from_millis(2),
            ..ChaosPlan::quiet(seed)
        };
        let proxy_rec = Recorder::enabled();
        let mut proxy =
            ChaosProxy::start(server.addr(), plan, proxy_rec.clone()).expect("proxy starts");
        let mut client = Client::connect_with(&proxy.addr().to_string(), retrying(seed))
            .expect("client connects through the proxy");

        for (i, opts) in mixes.iter().enumerate() {
            let payload = JobRequest::new(opts.clone()).encode();
            let (outcome, _cached) = client
                .run_job(&payload)
                .unwrap_or_else(|e| panic!("seed {seed}: job {i} failed through chaos: {e}"));
            let JobOutcome::Done { payload: bytes } = outcome else {
                panic!("seed {seed}: job {i} did not finish: {outcome:?}");
            };
            let totals = TraceTotals::decode(&bytes).expect("totals decode");
            assert_eq!(
                totals, oracles[i],
                "seed {seed}: recovered totals for job {i} differ from the oracle"
            );
            assert_eq!(bytes, oracles[i].encode(), "seed {seed}: byte identity violated");
        }
        proxy.shutdown();
    }
    // The sweep resubmitted through retries; whatever recomputation
    // happened, the server never failed a job.
    let stats = server.stats();
    assert_eq!(stats.failed, 0, "{stats:?}");
    assert!(stats.completed >= 3, "{stats:?}");
}

/// A quiet proxy on the path is invisible: no retries needed, results
/// bit-identical — the baseline that proves the proxy itself does not
/// perturb the bytes.
#[test]
fn quiet_proxy_is_transparent() {
    let opts = tiny_opts(2, 11);
    let expected = oracle_totals(&opts);
    let (server, _rec) = start_server(1);
    let mut proxy = ChaosProxy::start(server.addr(), ChaosPlan::quiet(1), Recorder::disabled())
        .expect("proxy starts");
    let mut client =
        Client::connect(&proxy.addr().to_string()).expect("client connects through the proxy");
    let job = client.submit(&JobRequest::new(opts).encode()).expect("submit");
    let (outcome, cached) = client.result(job).expect("result");
    let JobOutcome::Done { payload } = outcome else { panic!("job did not finish: {outcome:?}") };
    assert!(!cached);
    assert_eq!(TraceTotals::decode(&payload).expect("decode"), expected);
    proxy.shutdown();
}

// ---------------------------------------------------------------------
// Typed failure, bounded time — never a hang
// ---------------------------------------------------------------------

/// With the wire severed on every chunk and retries disabled, the
/// client gets a typed error promptly — no hang, no panic.
#[test]
fn severed_wire_without_retries_fails_typed_and_fast() {
    let (server, _rec) = start_server(1);
    let plan = ChaosPlan { close_permille: 1000, ..ChaosPlan::quiet(3 ^ env_seed()) };
    let mut proxy =
        ChaosProxy::start(server.addr(), plan, Recorder::disabled()).expect("proxy starts");
    let cfg = ClientConfig {
        read_timeout: Some(Duration::from_secs(5)),
        retries: 0,
        ..ClientConfig::default()
    };
    let t0 = Instant::now();
    // Connect may itself succeed (the TCP handshake passes the proxy);
    // the first exchange then dies.
    let outcome = Client::connect_with(&proxy.addr().to_string(), cfg)
        .and_then(|mut c| c.run_job(&JobRequest::new(tiny_opts(2, 1)).encode()).map(|_| ()));
    let err = outcome.expect_err("a fully severed wire cannot succeed");
    assert!(
        matches!(err, ServerError::Io { .. } | ServerError::Protocol { .. }),
        "expected a transport-class error, got {err:?}"
    );
    assert!(t0.elapsed() < Duration::from_secs(20), "took {:?}", t0.elapsed());
    proxy.shutdown();
}

/// When every attempt dies, the retrying client reports
/// `RetriesExhausted` with the attempt count — the caller can tell "the
/// wire was bad N times" from "the server refused".
#[test]
fn exhausted_retries_surface_typed_with_attempt_count() {
    let (server, _rec) = start_server(1);
    let plan = ChaosPlan { close_permille: 1000, ..ChaosPlan::quiet(5 ^ env_seed()) };
    let mut proxy =
        ChaosProxy::start(server.addr(), plan, Recorder::disabled()).expect("proxy starts");
    let cfg = ClientConfig {
        read_timeout: Some(Duration::from_secs(5)),
        retries: 2,
        backoff_base: Duration::from_millis(5),
        backoff_max: Duration::from_millis(20),
        ..ClientConfig::default()
    };
    let outcome = Client::connect_with(&proxy.addr().to_string(), cfg)
        .and_then(|mut c| c.run_job(&JobRequest::new(tiny_opts(2, 2)).encode()).map(|_| ()));
    match outcome.expect_err("all attempts die") {
        ServerError::RetriesExhausted { attempts, .. } => assert_eq!(attempts, 3),
        // The very first dial can also die before any retryable
        // exchange happened — equally typed, equally fine.
        ServerError::Io { .. } | ServerError::Protocol { .. } => {}
        other => panic!("expected RetriesExhausted or Io, got {other:?}"),
    }
    proxy.shutdown();
}

// ---------------------------------------------------------------------
// JobMsg control-frame corruption (mirrors tests/transport.rs)
// ---------------------------------------------------------------------

/// SplitMix64 — deterministic field filler for arbitrary messages.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// An arbitrary control message of the chosen variant.
fn arb_jobmsg(variant: u8, seed: u64, n: usize) -> JobMsg {
    let mut s = seed;
    match variant % 7 {
        0 => JobMsg::Submit {
            ticket: mix(&mut s) as u32,
            payload: (0..n).map(|_| mix(&mut s) as u8).collect(),
        },
        1 => JobMsg::Accepted { ticket: mix(&mut s) as u32, job_id: mix(&mut s) },
        2 => JobMsg::Rejected { ticket: mix(&mut s) as u32, reason: format!("r{}", mix(&mut s)) },
        3 => JobMsg::Status { job_id: mix(&mut s) },
        4 => JobMsg::Result { job_id: mix(&mut s) },
        5 => JobMsg::ResultIs {
            job_id: mix(&mut s),
            outcome: JobOutcome::Done { payload: (0..n).map(|_| mix(&mut s) as u8).collect() },
            cached: mix(&mut s).is_multiple_of(2),
        },
        _ => JobMsg::Cancel { job_id: mix(&mut s) },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every strict prefix of a `JobMsg` frame is rejected typed — the
    /// decoder never reads past the buffer and never panics. This is
    /// exactly what a chaos-proxy mid-frame truncation delivers.
    #[test]
    fn truncated_jobmsg_frames_are_rejected(
        variant in 0u8..7,
        seed in 0u64..u64::MAX,
        n in 0usize..16,
    ) {
        let msg = arb_jobmsg(variant, seed ^ env_seed(), n);
        let mut buf = Vec::new();
        encode_frame(&msg, 0, &mut buf);
        for cut in 0..buf.len() {
            prop_assert!(
                decode_frame::<JobMsg>(&buf[..cut]).is_err(),
                "prefix of {cut}/{} bytes decoded", buf.len()
            );
        }
    }

    /// Round-trip sanity for the arbitrary generator itself.
    #[test]
    fn arbitrary_jobmsgs_round_trip(
        variant in 0u8..7,
        seed in 0u64..u64::MAX,
        n in 0usize..16,
    ) {
        let msg = arb_jobmsg(variant, seed ^ env_seed(), n);
        let mut buf = Vec::new();
        encode_frame(&msg, 0, &mut buf);
        let (back, _, consumed) = decode_frame::<JobMsg>(&buf).expect("own frame decodes");
        prop_assert_eq!(consumed, buf.len());
        prop_assert_eq!(back, msg);
    }
}

/// Every single-bit flip anywhere in a `JobMsg` frame is caught by the
/// CRC (or a stricter header check) — no corrupted control frame is
/// ever acted on.
#[test]
fn every_jobmsg_bit_flip_is_detected() {
    let msg = JobMsg::Submit { ticket: 77, payload: vec![1, 2, 3, 4, 5, 6, 7, 8] };
    let mut buf = Vec::new();
    encode_frame(&msg, 0, &mut buf);
    for bit in 0..buf.len() * 8 {
        let mut c = buf.clone();
        c[bit / 8] ^= 1 << (bit % 8);
        assert!(
            decode_frame::<JobMsg>(&c).is_err(),
            "flipping bit {bit} of the frame went undetected"
        );
    }
}

/// Re-derives a frame's checksum after tampering, so the targeted
/// validation (not the CRC) is what rejects it.
fn re_crc(buf: &mut [u8]) {
    let crc = cip_transport::wire::crc32(&[&buf[..26], &buf[cip_transport::HEADER_LEN..]]);
    buf[26..30].copy_from_slice(&crc.to_le_bytes());
}

/// A hostile length field is rejected before any allocation, even with
/// a recomputed checksum.
#[test]
fn hostile_jobmsg_length_is_rejected_before_allocation() {
    let mut buf = Vec::new();
    encode_frame(&JobMsg::Stats, 0, &mut buf);
    buf[22..26].copy_from_slice(&((MAX_PAYLOAD as u32) + 1).to_le_bytes());
    re_crc(&mut buf);
    match decode_frame::<JobMsg>(&buf) {
        Err(WireError::Oversized { len }) => assert_eq!(len, MAX_PAYLOAD + 1),
        other => panic!("expected Oversized, got {other:?}"),
    }
}

/// An unknown control tag is rejected typed.
#[test]
fn unknown_jobmsg_tag_is_rejected() {
    let mut buf = Vec::new();
    encode_frame(&JobMsg::Stats, 0, &mut buf);
    buf[1] = 0xEE;
    re_crc(&mut buf);
    match decode_frame::<JobMsg>(&buf) {
        Err(WireError::BadTag { got }) => assert_eq!(got, 0xEE),
        other => panic!("expected BadTag, got {other:?}"),
    }
}

/// A live server fed a corrupted frame counts it, drops that
/// connection, and keeps serving other clients — counts-and-drops,
/// never panic-and-die.
#[test]
fn live_server_counts_and_drops_corrupt_frames() {
    use std::io::{Read, Write};
    let (server, rec) = start_server(1);

    // A tampered Submit frame: valid header shape, corrupted payload.
    let mut buf = Vec::new();
    encode_frame(&JobMsg::Submit { ticket: 1, payload: vec![9; 32] }, 0, &mut buf);
    let last = buf.len() - 1;
    buf[last] ^= 0xFF;
    let mut evil = std::net::TcpStream::connect(server.addr()).expect("connect");
    evil.write_all(&buf).expect("write tampered frame");
    // The server drops the connection: read sees EOF, not a reply.
    evil.set_read_timeout(Some(Duration::from_secs(10))).ok();
    let mut sink = [0u8; 16];
    let got = evil.read(&mut sink);
    assert!(matches!(got, Ok(0) | Err(_)), "expected a dropped connection, got {got:?}");

    let deadline = Instant::now() + Duration::from_secs(5);
    while rec.counter_value("server.recv_corrupt") == 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(rec.counter_value("server.recv_corrupt") >= 1, "corruption must be counted");

    // And the server still serves a clean client, bit-identically.
    let opts = tiny_opts(2, 9);
    let expected = oracle_totals(&opts);
    let mut client = Client::connect(&server.addr().to_string()).expect("clean client connects");
    let (outcome, _) =
        client.run_job(&JobRequest::new(opts).encode()).expect("clean job completes");
    let JobOutcome::Done { payload } = outcome else { panic!("job did not finish: {outcome:?}") };
    assert_eq!(TraceTotals::decode(&payload).expect("decode"), expected);
}
