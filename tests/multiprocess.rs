//! Multi-process smoke suite (DESIGN.md §6e): real `cip-worker` OS
//! processes over loopback TCP, driven by the traced pipeline and
//! diffed against the in-process oracle.
//!
//! Three guarantees:
//!
//! * **bit-identity** — k worker processes produce `TrafficLog` totals
//!   (halo, shipments, pairs, migration) identical to the in-process
//!   run, across repartitions;
//! * **chaos** — message faults injected inside the workers converge to
//!   the clean answer, exactly as they do in-process;
//! * **death** — a fault-plan kill becomes a real process exit, and the
//!   driver recovers over the surviving workers while still detecting
//!   every contact pair.
//!
//! The abrupt-death (`kill -9`-style, no outcome report) variant lives
//! in `multiprocess_kill.rs` — it needs its own process because it sets
//! a process-wide environment variable.

use cip::trace::{run_traced, ChaosOptions, TraceOptions, TransportKind};
use std::path::PathBuf;

/// CI seed sweep: `CHAOS_SEED` perturbs every seed in this file.
fn env_seed() -> u64 {
    std::env::var("CHAOS_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(0)
}

/// The worker-process transport, pointing at the binary Cargo built for
/// this test run (the `CIP_WORKER_BIN` / sibling lookup is for
/// installed use).
fn workers() -> TransportKind {
    TransportKind::Workers {
        bind: "127.0.0.1:0".into(),
        worker_bin: Some(PathBuf::from(env!("CARGO_BIN_EXE_cip-worker"))),
    }
}

fn tiny(k: usize, period: Option<usize>, transport: TransportKind) -> TraceOptions {
    TraceOptions {
        scenario: "tiny".into(),
        k,
        snapshots: Some(6),
        repartition_period: period,
        chaos: None,
        transport,
        ..TraceOptions::default()
    }
}

#[test]
fn four_worker_processes_match_the_in_process_oracle() {
    let clean = run_traced(&tiny(4, Some(2), TransportKind::InProcess)).expect("in-process run");
    let multi = run_traced(&tiny(4, Some(2), workers())).expect("worker-process run");
    assert_eq!(multi.steps, clean.steps);
    assert_eq!(multi.halo, clean.halo, "halo totals must be bit-identical");
    assert_eq!(multi.shipments, clean.shipments, "shipment totals must be bit-identical");
    assert_eq!(multi.contact_pairs, clean.contact_pairs, "pair counts must be bit-identical");
    assert_eq!(multi.migrated, clean.migrated, "migration totals must be bit-identical");
    assert_eq!(multi.repartitions, clean.repartitions);
    assert!(multi.repartitions >= 2, "the scenario must exercise repartitioning");
    multi.verify_totals().expect("counters equal executed traffic");
    assert!(
        multi.recorder.counter_value("transport.bytes_sent") > 0,
        "worker byte deltas must be folded into the driver's telemetry"
    );
}

#[test]
fn worker_processes_match_the_clean_run_under_message_chaos() {
    let clean = run_traced(&tiny(3, Some(2), TransportKind::InProcess)).expect("in-process run");
    let mut opts = tiny(3, Some(2), workers());
    opts.chaos = Some(ChaosOptions {
        seed: 47 ^ env_seed(),
        drop_permille: 120,
        dup_permille: 60,
        delay_permille: 60,
        reorder_permille: 60,
        kill: None,
        timeout_ms: 300,
        retries: 2,
    });
    let noisy = run_traced(&opts).expect("chaotic worker-process run");
    assert_eq!(noisy.rank_losses, 0);
    assert_eq!(noisy.contact_pairs, clean.contact_pairs);
    assert_eq!(noisy.halo, clean.halo);
    assert_eq!(noisy.shipments, clean.shipments);
    noisy.verify_totals().expect("counters equal executed traffic");
}

#[test]
fn fault_plan_kill_becomes_a_real_process_death_and_the_driver_recovers() {
    let clean = run_traced(&tiny(3, Some(10), TransportKind::InProcess)).expect("in-process run");
    let mut opts = tiny(3, Some(10), workers());
    opts.chaos = Some(ChaosOptions {
        seed: 13 ^ env_seed(),
        drop_permille: 0,
        dup_permille: 0,
        delay_permille: 0,
        reorder_permille: 0,
        kill: Some((1, 1)),
        timeout_ms: 300,
        retries: 2,
    });
    let report = run_traced(&opts).expect("kill run recovers");
    assert_eq!(report.rank_losses, 1, "exactly the killed rank is lost");
    assert!(report.repartitions >= 1, "recovery repartitions over the survivors");
    assert_eq!(report.contact_pairs, clean.contact_pairs, "recovery must still detect every pair");
    report.verify_totals().expect("counters equal executed traffic");
}
