//! Overlapped-vs-barrier repartitioning oracle suite (DESIGN.md §6f).
//!
//! Overlapped repartitioning moves the boundary plan onto a background
//! thread and splices the node migration into the next batch as a
//! `Migrate` prologue — but it must be a pure scheduling change. This
//! suite proves it end to end through the traced driver: the two modes
//! must agree on **every executed total** — halo units, element
//! shipments, migrated nodes, contact pairs, repartition count — at 2,
//! 4, and 8 ranks, over every transport, under seeded message chaos
//! (CI sweeps seeds 7/21/1337 via `CHAOS_SEED`), and when a rank dies
//! while a background plan is in flight (the plan must be discarded and
//! recomputed over the survivors). It also pins the repartition-
//! boundary guard regressions: period 1 and period == max_batch fire
//! exactly once per boundary in both modes.

use cip::runtime::RepartitionMode;
use cip::trace::{run_traced, ChaosOptions, TraceOptions, TraceReport, TransportKind};
use std::path::PathBuf;

/// CI seed sweep: `CHAOS_SEED` perturbs every chaos seed in this file.
fn env_seed() -> u64 {
    std::env::var("CHAOS_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(0)
}

/// A tiny run with two repartition boundaries (steps 3 and 6) that both
/// land mid-run, so the overlapped mode plans each one during the
/// preceding batch and splices a migration into the following one.
fn opts(k: usize, mode: RepartitionMode) -> TraceOptions {
    TraceOptions {
        scenario: "tiny".into(),
        k,
        snapshots: Some(9),
        repartition_period: Some(3),
        repartition_mode: mode,
        ..TraceOptions::default()
    }
}

/// Every executed total the driver accumulates, as one comparable value.
fn totals(r: &TraceReport) -> (usize, u64, u64, u64, u64, usize, usize) {
    (r.steps, r.halo, r.shipments, r.migrated, r.contact_pairs, r.repartitions, r.rank_losses)
}

/// The multi-process transport, pointed at the workspace's own
/// `cip-worker` binary.
fn workers() -> TransportKind {
    TransportKind::Workers {
        bind: "127.0.0.1:0".into(),
        worker_bin: Some(PathBuf::from(env!("CARGO_BIN_EXE_cip-worker"))),
    }
}

#[test]
fn modes_agree_on_all_totals_across_rank_counts() {
    for k in [2usize, 4, 8] {
        let barrier = run_traced(&opts(k, RepartitionMode::Barrier)).expect("barrier run");
        let over = run_traced(&opts(k, RepartitionMode::Overlapped)).expect("overlapped run");
        assert_eq!(totals(&over), totals(&barrier), "k={k}");
        assert_eq!(over.repartitions, 2, "k={k}: boundaries at 3 and 6");
        barrier.verify_totals().expect("barrier counters equal executed traffic");
        over.verify_totals().expect("overlapped counters equal executed traffic");
        // Both modes charge their boundary wait to the same span; the
        // overlapped mode additionally accounts its accepted plans.
        let os = over.summary();
        assert_eq!(os.span("repartition.stall").map(|s| s.count), Some(2), "k={k}");
        assert!(over.recorder.counter_value("repartition.overlap.planned") >= 1, "k={k}");
        assert_eq!(over.recorder.counter_value("repartition.plan.discarded"), 0, "k={k}");
        let bs = barrier.summary();
        assert_eq!(bs.span("repartition.stall").map(|s| s.count), Some(2), "k={k}");
        assert_eq!(barrier.recorder.counter_value("repartition.overlap.planned"), 0, "k={k}");
    }
}

#[test]
fn modes_agree_over_the_tcp_threads_transport() {
    let inproc = run_traced(&opts(3, RepartitionMode::Barrier)).expect("inproc barrier run");
    for mode in [RepartitionMode::Barrier, RepartitionMode::Overlapped] {
        let tcp = run_traced(&TraceOptions {
            transport: TransportKind::TcpThreads { bind: "127.0.0.1:0".into() },
            ..opts(3, mode)
        })
        .expect("tcp-threads run");
        assert_eq!(totals(&tcp), totals(&inproc), "mode={mode:?}");
        tcp.verify_totals().expect("tcp counters equal executed traffic");
    }
}

#[test]
fn modes_agree_over_the_multiprocess_transport() {
    let inproc = run_traced(&opts(3, RepartitionMode::Barrier)).expect("inproc barrier run");
    for mode in [RepartitionMode::Barrier, RepartitionMode::Overlapped] {
        let multi = run_traced(&TraceOptions { transport: workers(), ..opts(3, mode) })
            .expect("worker-pool run");
        assert_eq!(totals(&multi), totals(&inproc), "mode={mode:?}");
        multi.verify_totals().expect("worker counters equal executed traffic");
    }
}

#[test]
fn modes_agree_under_message_chaos() {
    for seed in [7u64, 21, 1337] {
        let chaos = ChaosOptions {
            seed: seed ^ env_seed(),
            drop_permille: 150,
            dup_permille: 80,
            delay_permille: 80,
            reorder_permille: 80,
            kill: None,
            timeout_ms: 300,
            retries: 2,
        };
        let barrier = run_traced(&TraceOptions {
            chaos: Some(chaos.clone()),
            ..opts(2, RepartitionMode::Barrier)
        })
        .expect("barrier chaos run");
        let over = run_traced(&TraceOptions {
            chaos: Some(chaos.clone()),
            ..opts(2, RepartitionMode::Overlapped)
        })
        .expect("overlapped chaos run");
        assert_eq!(totals(&over), totals(&barrier), "seed={seed}");
        assert_eq!(over.rank_losses, 0, "seed={seed}: faults repaired in place");
        over.verify_totals().expect("overlapped counters stay exact under chaos");
    }
}

#[test]
fn kill_in_the_planning_window_discards_the_plan_and_recovers() {
    // Step 4 sits inside batch [3, 6) — exactly while the background
    // planner is computing boundary 6. The kill must invalidate that
    // plan (computed over the old rank space) and the boundary must be
    // recomputed over the survivors, landing on the barrier totals.
    let chaos = ChaosOptions {
        seed: 13 ^ env_seed(),
        kill: Some((4, 1)),
        timeout_ms: 300,
        retries: 2,
        ..ChaosOptions::default()
    };
    let barrier = run_traced(&TraceOptions {
        chaos: Some(chaos.clone()),
        ..opts(3, RepartitionMode::Barrier)
    })
    .expect("barrier kill run");
    let over = run_traced(&TraceOptions {
        chaos: Some(chaos.clone()),
        ..opts(3, RepartitionMode::Overlapped)
    })
    .expect("overlapped kill run");
    assert_eq!(totals(&over), totals(&barrier));
    assert_eq!(over.rank_losses, 1);
    assert!(over.repartitions >= 3, "boundaries 3 and 6 plus the recovery repartition");
    assert!(
        over.recorder.counter_value("repartition.plan.discarded") >= 1,
        "the in-flight boundary-6 plan was computed over a dead rank"
    );
    over.verify_totals().expect("overlapped counters stay exact across a recovery");
    barrier.verify_totals().expect("barrier counters stay exact across a recovery");
}

#[test]
fn period_one_fires_every_boundary_exactly_once() {
    for mode in [RepartitionMode::Barrier, RepartitionMode::Overlapped] {
        let r = run_traced(&TraceOptions {
            snapshots: Some(5),
            repartition_period: Some(1),
            ..opts(2, mode)
        })
        .expect("period-1 run");
        assert_eq!(r.repartitions, 4, "mode={mode:?}: boundaries at 1, 2, 3, 4");
        r.verify_totals().expect("counters stay exact at period 1");
    }
}

#[test]
fn period_equal_to_max_batch_fires_once_per_boundary() {
    for mode in [RepartitionMode::Barrier, RepartitionMode::Overlapped] {
        let r = run_traced(&TraceOptions {
            snapshots: Some(6),
            repartition_period: Some(2),
            max_batch: 2,
            ..opts(2, mode)
        })
        .expect("period == max_batch run");
        assert_eq!(r.repartitions, 2, "mode={mode:?}: boundaries at 2 and 4");
        r.verify_totals().expect("counters stay exact at period == max_batch");
    }
}

#[test]
fn max_batch_depth_does_not_change_the_answer() {
    let oracle = run_traced(&opts(3, RepartitionMode::Overlapped)).expect("default max_batch");
    for max_batch in [1usize, 2, 8] {
        let r = run_traced(&TraceOptions { max_batch, ..opts(3, RepartitionMode::Overlapped) })
            .expect("max_batch run");
        assert_eq!(totals(&r), totals(&oracle), "max_batch={max_batch}");
    }
    // max_batch 0 is a typed configuration error, not a clamp or panic.
    let err = run_traced(&TraceOptions { max_batch: 0, ..opts(3, RepartitionMode::Overlapped) });
    assert!(
        matches!(err, Err(cip::trace::TraceError::Config(ref c)) if c.field == "max_batch"),
        "got {err:?}"
    );
}
