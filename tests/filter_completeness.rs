//! The correctness contract of global search (§4.1): a filter may produce
//! false positives but must NEVER produce a false negative — every part
//! that owns a contact point a surface element could touch must receive
//! that element.
//!
//! These tests check the contract for both the decision-tree filter and
//! the bounding-box filter against a brute-force oracle, on real snapshot
//! data from the synthetic simulation.

use cip::contact::{global_search, BboxFilter, DtreeFilter, GlobalFilter};
use cip::core::SnapshotView;
use cip::dtree::{induce, DtreeConfig};
use cip::geom::Aabb;
use cip::partition::{partition_kway, PartitionerConfig};
use cip::sim::SimConfig;

/// For every surface element and every contact point inside its bounding
/// box, the point's part must be among the filter's candidates (or be the
/// element's owner).
fn assert_no_false_negatives<F: GlobalFilter<3> + Sync>(
    view: &SnapshotView,
    node_parts: &[u32],
    filter: &F,
) {
    let labels = view.contact.labels_from_node_parts(node_parts);
    let elements = view.surface_elements(node_parts);
    let plans = global_search(&elements, filter);
    let mut violations = 0;
    for (e, el) in elements.iter().enumerate() {
        for (ci, p) in view.contact.positions.iter().enumerate() {
            if el.bbox.contains_point(p) {
                let part = labels[ci];
                if part != el.owner && !plans[e].contains(&part) {
                    violations += 1;
                }
            }
        }
    }
    assert_eq!(violations, 0, "filter missed {violations} (element, contact-point) pairs");
}

fn partitioned_snapshot(i: usize, k: usize) -> (cip::sim::SimResult, usize) {
    let _ = i;
    let sim = cip::sim::run(&SimConfig::tiny());
    (sim, k)
}

#[test]
fn dtree_filter_has_no_false_negatives_across_snapshots() {
    let (sim, k) = partitioned_snapshot(0, 4);
    let view0 = SnapshotView::build(&sim, 0, 5);
    let asg = partition_kway(&view0.graph2.graph, k, &PartitionerConfig::default());
    let node_parts = view0.graph2.assignment_on_nodes(&asg);

    for i in [0, sim.len() / 2, sim.len() - 1] {
        let view = SnapshotView::build(&sim, i, 5);
        let labels = view.contact.labels_from_node_parts(&node_parts);
        let tree = induce(&view.contact.positions, &labels, k, &DtreeConfig::search_tree());
        let filter = DtreeFilter::new(&tree, k);
        assert_no_false_negatives(&view, &node_parts, &filter);
    }
}

#[test]
fn bbox_filter_has_no_false_negatives() {
    let (sim, k) = partitioned_snapshot(0, 4);
    let view = SnapshotView::build(&sim, sim.len() - 1, 5);
    let asg = partition_kway(&view.graph2.graph, k, &PartitionerConfig::default());
    let node_parts = view.graph2.assignment_on_nodes(&asg);
    let labels = view.contact.labels_from_node_parts(&node_parts);
    let filter = BboxFilter::from_points(&view.contact.positions, &labels, k);
    assert_no_false_negatives(&view, &node_parts, &filter);
}

#[test]
fn dtree_filter_point_location_is_exact() {
    // Sharper property than box search: for a degenerate query (a single
    // contact point), the filter must return exactly the parts whose
    // leaves contain that point — in particular the point's own part.
    let (sim, k) = partitioned_snapshot(0, 3);
    let view = SnapshotView::build(&sim, 2, 5);
    let asg = partition_kway(&view.graph2.graph, k, &PartitionerConfig::default());
    let node_parts = view.graph2.assignment_on_nodes(&asg);
    let labels = view.contact.labels_from_node_parts(&node_parts);
    let tree = induce(&view.contact.positions, &labels, k, &DtreeConfig::search_tree());
    let filter = DtreeFilter::new(&tree, k);
    let mut out = Vec::new();
    for (ci, p) in view.contact.positions.iter().enumerate() {
        filter.candidate_parts(&Aabb::from_point(*p), &mut out);
        assert!(
            out.contains(&labels[ci]),
            "point {ci} of part {} not found by its own filter",
            labels[ci]
        );
    }
}

#[test]
fn search_tree_leaves_are_pure_on_real_data() {
    let (sim, k) = partitioned_snapshot(0, 5);
    let view = SnapshotView::build(&sim, sim.len() - 1, 5);
    let asg = partition_kway(&view.graph2.graph, k, &PartitionerConfig::default());
    let node_parts = view.graph2.assignment_on_nodes(&asg);
    let labels = view.contact.labels_from_node_parts(&node_parts);
    let tree = induce(&view.contact.positions, &labels, k, &DtreeConfig::search_tree());
    // Locating every training point must return its own label (purity).
    for (ci, p) in view.contact.positions.iter().enumerate() {
        assert_eq!(tree.locate(p), labels[ci], "impure leaf at contact point {ci}");
    }
}
