//! Job-server suite: the multi-tenant partition/trace service against
//! the in-process oracle.
//!
//! The service's correctness contract is bit-identity: totals fetched
//! through submit → queue → worker → wire must equal, byte for byte,
//! the totals of a direct [`run_traced`] call with the same options —
//! under client concurrency, from the content-hash cache, after
//! cancellations, and with chaos-mode fault injection in the job.

use cip::server::{Client, JobOutcome, JobState, Server, ServerConfig};
use cip::service::{JobRequest, TraceJobRunner, TraceTotals};
use cip::trace::{run_traced, ChaosOptions, TraceOptions};
use cip_telemetry::Recorder;
use std::sync::Arc;
use std::thread;

fn start_server(workers: usize) -> (Server<TraceJobRunner>, String, Recorder) {
    let rec = Recorder::enabled();
    let cfg = ServerConfig { workers, recorder: rec.clone(), ..ServerConfig::default() };
    let server = Server::start(TraceJobRunner, &cfg).expect("server starts");
    let addr = server.addr().to_string();
    (server, addr, rec)
}

fn oracle_totals(opts: &TraceOptions) -> TraceTotals {
    let report = run_traced(opts).expect("oracle run succeeds");
    report.verify_totals().expect("oracle totals are conserved");
    TraceTotals::from_report(&report)
}

fn submit_and_fetch(client: &mut Client, opts: &TraceOptions) -> (TraceTotals, bool) {
    let job = client.submit(&JobRequest::new(opts.clone()).encode()).expect("submit");
    let (outcome, cached) = client.result(job).expect("result");
    match outcome {
        JobOutcome::Done { payload } => {
            (TraceTotals::decode(&payload).expect("totals decode"), cached)
        }
        other => panic!("job did not finish: {other:?}"),
    }
}

fn tiny_opts(k: usize, seed: u64) -> TraceOptions {
    TraceOptions::builder()
        .scenario("tiny")
        .k(k)
        .seed(seed)
        .repartition_period(Some(2))
        .build()
        .expect("valid options")
}

/// ≥4 concurrent clients with a mix of scenarios, ranks, schedules, and
/// repartition modes: every reply must be byte-identical to the direct
/// in-process run of the same options.
#[test]
fn concurrent_clients_get_bit_identical_totals() {
    let mixes: Vec<TraceOptions> = vec![
        tiny_opts(2, 5),
        tiny_opts(4, 7),
        TraceOptions::builder()
            .scenario("head_on")
            .k(3)
            .snapshots(4)
            .seed(11)
            .repartition_period(Some(2))
            .build()
            .expect("valid options"),
        TraceOptions::builder()
            .scenario("tiny")
            .k(3)
            .seed(9)
            .repartition_period(None)
            .build()
            .expect("valid options"),
        tiny_opts(2, 42),
    ];
    let oracles: Vec<TraceTotals> = mixes.iter().map(oracle_totals).collect();

    let (server, addr, _rec) = start_server(3);
    let mixes = Arc::new(mixes);
    let handles: Vec<_> = (0..mixes.len())
        .map(|i| {
            let addr = addr.clone();
            let mixes = Arc::clone(&mixes);
            thread::spawn(move || {
                let mut client = Client::connect(&addr).expect("client connects");
                submit_and_fetch(&mut client, &mixes[i]).0
            })
        })
        .collect();
    for (i, h) in handles.into_iter().enumerate() {
        let totals = h.join().expect("client thread");
        assert_eq!(
            totals, oracles[i],
            "client {i} got totals that differ from the in-process oracle"
        );
    }
    let stats = server.stats();
    assert_eq!(stats.submitted, 5);
    assert_eq!(stats.completed, 5);
    assert_eq!(stats.failed, 0);
}

/// A byte-identical resubmission is served from the content-hash cache:
/// no recomputation, `cached = true`, and the exact bytes of the first
/// run — including across distinct client connections.
#[test]
fn repeat_submissions_hit_the_cache_bit_identically() {
    let opts = tiny_opts(3, 13);
    let (server, addr, rec) = start_server(2);

    let mut first_client = Client::connect(&addr).expect("client 1");
    let (first, cached_first) = submit_and_fetch(&mut first_client, &opts);
    assert!(!cached_first, "first submission must compute");

    let mut second_client = Client::connect(&addr).expect("client 2");
    let (second, cached_second) = submit_and_fetch(&mut second_client, &opts);
    assert!(cached_second, "identical resubmission must hit the cache");
    assert_eq!(second, first, "cached totals must be bit-identical");
    assert_eq!(second.encode(), first.encode());

    // A different seed is a different payload — cache miss.
    let (third, cached_third) = submit_and_fetch(&mut second_client, &tiny_opts(3, 14));
    assert!(!cached_third);
    let _ = third;

    let stats = server.stats();
    assert_eq!(stats.submitted, 3);
    assert_eq!(stats.cache_hits, 1);
    assert_eq!(stats.completed, 2, "the cached reply must not recompute");
    assert_eq!(rec.counter_value("server.jobs.cache_hits"), 1);
    assert_eq!(rec.counter_value("server.jobs.submitted"), 3);
}

/// Cancelling jobs — one mid-flight, one straight after submission —
/// must leave the worker pool fully serviceable: a subsequent job on the
/// same server completes with oracle-identical totals.
#[test]
fn cancel_leaves_the_pool_serviceable() {
    let (server, addr, _rec) = start_server(1);
    let mut client = Client::connect(&addr).expect("client connects");

    // Occupy the single worker, then pile up and cancel a second job.
    let blocker_opts = TraceOptions::builder()
        .scenario("head_on")
        .k(4)
        .snapshots(8)
        .seed(3)
        .repartition_period(Some(2))
        .build()
        .expect("valid options");
    let blocker = client.submit(&JobRequest::new(blocker_opts).encode()).expect("submit blocker");
    let queued = client.submit(&JobRequest::new(tiny_opts(2, 77)).encode()).expect("submit queued");

    let state = client.cancel(queued).expect("cancel queued");
    assert!(
        matches!(state, JobState::Cancelled | JobState::Running | JobState::Done),
        "unexpected state after cancel: {state:?}"
    );
    let (outcome, _) = client.result(queued).expect("queued outcome");
    assert!(
        matches!(outcome, JobOutcome::Cancelled | JobOutcome::Done { .. }),
        "cancel must yield a clean outcome, got {outcome:?}"
    );

    // Cancel the blocker mid-run; the session winds down at a batch
    // boundary (or finishes if it already passed the last one).
    client.cancel(blocker).expect("cancel blocker");
    let (outcome, _) = client.result(blocker).expect("blocker outcome");
    assert!(
        matches!(outcome, JobOutcome::Cancelled | JobOutcome::Done { .. }),
        "mid-job cancel must yield a clean outcome, got {outcome:?}"
    );

    // The pool must still serve fresh work, bit-identically.
    let opts = tiny_opts(2, 21);
    let expected = oracle_totals(&opts);
    let (totals, _) = submit_and_fetch(&mut client, &opts);
    assert_eq!(totals, expected, "post-cancel job must match the oracle");
    assert!(server.stats().completed >= 1);
}

/// A chaos-seeded job (deterministic message faults + a scripted rank
/// kill) through the job API produces the same totals as the direct
/// chaos run: fault recovery happens inside the job, invisibly to the
/// service layer.
#[test]
fn chaos_job_through_the_job_api_matches_the_oracle() {
    let opts = TraceOptions::builder()
        .scenario("tiny")
        .k(3)
        .seed(5)
        .repartition_period(Some(2))
        .chaos(Some(ChaosOptions { seed: 7, kill: Some((2, 1)), ..ChaosOptions::default() }))
        .build()
        .expect("valid options");
    let expected = oracle_totals(&opts);
    assert!(expected.rank_losses >= 1, "the kill must actually cost a rank");

    let (_server, addr, _rec) = start_server(2);
    let mut client = Client::connect(&addr).expect("client connects");
    let (totals, _) = submit_and_fetch(&mut client, &opts);
    assert_eq!(totals, expected, "chaos job must match the direct chaos run");
}

/// The wire catalog mirrors the scenario registry, and a garbage
/// payload is rejected as a failed job — not a dead server.
#[test]
fn catalog_and_invalid_payloads() {
    let (_server, addr, _rec) = start_server(1);
    let mut client = Client::connect(&addr).expect("client connects");

    let info = client.catalog().expect("catalog");
    let names: Vec<&str> = info.entries.iter().map(|e| e.name.as_str()).collect();
    assert_eq!(info.entries.len(), cip::sim::scenarios::list().len());
    assert!(names.contains(&"head_on") && names.contains(&"tiny"), "{names:?}");
    assert_eq!(info.max_payload, ServerConfig::default().max_payload as u64);

    let job = client.submit(&[0xFF, 0xEE]).expect("garbage submits fine");
    let (outcome, _) = client.result(job).expect("result");
    assert!(matches!(outcome, JobOutcome::Failed { .. }), "got {outcome:?}");

    // The server survives: a real job still works.
    let opts = tiny_opts(2, 1);
    let expected = oracle_totals(&opts);
    let (totals, _) = submit_and_fetch(&mut client, &opts);
    assert_eq!(totals, expected);
}
