//! The strongest claim this repository makes: the communication numbers
//! the evaluation reports (FEComm, NRemote) are the **exact message
//! counts of an executable parallel step**. These tests run the threaded
//! rank executor on real simulation snapshots under the MCML+DT
//! decomposition and assert, message-matrix for message-matrix, that the
//! executed traffic equals the metric predictions — and that the
//! distributed contact detection equals the serial one.

use cip::contact::{n_remote, serial_contact_pairs, DtreeFilter, SurfaceElementInfo};
use cip::core::{dt_friendly_correct, halo_traffic, DtFriendlyConfig, SnapshotView};
use cip::dtree::{induce, DtreeConfig};
use cip::graph::total_comm_volume;
use cip::partition::{partition_kway, PartitionerConfig};
use cip::runtime::{build_decomposition, execute_step, StepInput};
use cip::sim::SimConfig;

struct Setup {
    view: SnapshotView,
    node_parts: Vec<u32>,
    asg: Vec<u32>,
    k: usize,
}

fn setup(k: usize, snapshot: usize) -> Setup {
    let sim = cip::sim::run(&SimConfig::tiny());
    let view0 = SnapshotView::build(&sim, 0, 5);
    let mut asg = partition_kway(&view0.graph2.graph, k, &PartitionerConfig::default());
    let positions: Vec<_> =
        view0.graph2.node_of_vertex.iter().map(|&n| view0.mesh.points[n as usize]).collect();
    dt_friendly_correct(&view0.graph2.graph, &positions, k, &mut asg, &DtFriendlyConfig::default());
    let node_parts = view0.graph2.assignment_on_nodes(&asg);
    let view = SnapshotView::build(&sim, snapshot, 5);
    let asg_now: Vec<u32> =
        view.graph2.node_of_vertex.iter().map(|&n| node_parts[n as usize]).collect();
    Setup { view, node_parts, asg: asg_now, k }
}

fn run_step(
    s: &Setup,
    tolerance: f64,
) -> (cip::runtime::StepOutput, Vec<SurfaceElementInfo<3>>, Vec<u16>) {
    let elements = s.view.surface_elements(&s.node_parts);
    let bodies = s.view.face_bodies();
    let owners: Vec<u32> = elements.iter().map(|e| e.owner).collect();
    let decomposition = build_decomposition(
        &s.view.graph2.graph,
        &s.view.graph2.node_of_vertex,
        &s.asg,
        &owners,
        s.k,
    );
    let labels = s.view.contact.labels_from_node_parts(&s.node_parts);
    let tree = induce(&s.view.contact.positions, &labels, s.k, &DtreeConfig::search_tree());
    let filter = DtreeFilter::new(&tree, s.k);
    let out = execute_step(&StepInput {
        decomposition: &decomposition,
        positions: &s.view.mesh.points,
        elements: &elements,
        bodies: &bodies,
        filter: &filter,
        tolerance,
        recorder: cip::telemetry::Recorder::disabled(),
    })
    .expect("step executes without injected faults");
    (out, elements, bodies)
}

#[test]
fn executed_halo_traffic_equals_fe_comm_prediction() {
    let s = setup(4, 5);
    let (out, _, _) = run_step(&s, 0.4);
    assert_eq!(out.ghost_mismatches, 0, "halo exchange delivered stale ghosts");

    // Totals: executed == metric.
    let predicted_total = total_comm_volume(&s.view.graph2.graph, &s.asg);
    assert_eq!(out.traffic.total_halo(), predicted_total);

    // Full matrix: executed == analytic prediction, pairwise.
    let predicted = halo_traffic(&s.view.graph2.graph, &s.asg, s.k);
    assert_eq!(out.traffic.halo, predicted.matrix);
}

#[test]
fn executed_shipments_equal_n_remote_prediction_at_zero_tolerance() {
    let s = setup(4, 5);
    let (out, elements, _) = run_step(&s, 0.0);
    let labels = s.view.contact.labels_from_node_parts(&s.node_parts);
    let tree = induce(&s.view.contact.positions, &labels, s.k, &DtreeConfig::search_tree());
    let filter = DtreeFilter::new(&tree, s.k);
    assert_eq!(out.traffic.total_shipments(), n_remote(&elements, &filter));
}

#[test]
fn executed_detection_equals_serial_across_penetration_stages() {
    for snapshot in [2usize, 5, 9] {
        let s = setup(3, snapshot);
        let (out, elements, bodies) = run_step(&s, 0.4);
        let serial = serial_contact_pairs(&elements, &bodies, 0.4);
        assert_eq!(
            out.contact_pairs, serial,
            "snapshot {snapshot}: executed parallel step must detect the serial pairs"
        );
    }
}

#[test]
fn executor_scales_across_rank_counts() {
    for k in [1usize, 2, 5, 8] {
        let s = setup(k, 6);
        let (out, elements, bodies) = run_step(&s, 0.3);
        assert_eq!(out.ghost_mismatches, 0, "k={k}");
        let serial = serial_contact_pairs(&elements, &bodies, 0.3);
        assert_eq!(out.contact_pairs, serial, "k={k}");
        if k == 1 {
            assert_eq!(out.traffic.total_halo(), 0);
            assert_eq!(out.traffic.total_shipments(), 0);
        }
    }
}
