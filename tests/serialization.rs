//! Serialization round-trips: simulation snapshots, meshes, graphs, and
//! search structures must survive a JSON round-trip bit-for-bit, because
//! the experiment harness persists them and a production code would
//! checkpoint them.

use cip::dtree::{induce, DtreeConfig};
use cip::geom::{Aabb, Point, RcbTree};
use cip::graph::GraphBuilder;
use cip::mesh::generators;
use cip::sim::SimConfig;

#[test]
fn point_and_aabb_roundtrip() {
    let p = Point::new([1.5, -2.25, 3.125]);
    let json = serde_json::to_string(&p).unwrap();
    let q: Point<3> = serde_json::from_str(&json).unwrap();
    assert_eq!(p, q);

    let b = Aabb::new(Point::new([0.0, 1.0]), Point::new([2.0, 3.0]));
    let json = serde_json::to_string(&b).unwrap();
    let c: Aabb<2> = serde_json::from_str(&json).unwrap();
    assert_eq!(b, c);
}

#[test]
fn graph_roundtrip_preserves_structure() {
    let mut b = GraphBuilder::new(5, 2);
    for v in 0..5u32 {
        b.set_vwgt(v, &[1, i64::from(v % 2 == 0)]);
    }
    b.add_edge(0, 1, 3).add_edge(1, 2, 1).add_edge(3, 4, 7);
    let g = b.build();
    let json = serde_json::to_string(&g).unwrap();
    let h: cip::graph::Graph = serde_json::from_str(&json).unwrap();
    h.validate().unwrap();
    assert_eq!(h.nv(), g.nv());
    assert_eq!(h.ne(), g.ne());
    assert_eq!(h.total_vwgt(), g.total_vwgt());
    for v in 0..5u32 {
        assert_eq!(g.neighbors(v).collect::<Vec<_>>(), h.neighbors(v).collect::<Vec<_>>());
    }
}

#[test]
fn mesh_roundtrip_preserves_erosion_state() {
    let mut m = generators::hex_box([2, 2, 2], Point::new([0.0; 3]), [1.0; 3], 3);
    m.erode(5);
    let json = serde_json::to_string(&m).unwrap();
    let n: cip::mesh::Mesh<3> = serde_json::from_str(&json).unwrap();
    n.validate().unwrap();
    assert_eq!(n.num_live_elements(), m.num_live_elements());
    assert!(!n.alive[5]);
    assert_eq!(n.body, m.body);
    assert_eq!(n.points.len(), m.points.len());
}

#[test]
fn decision_tree_roundtrip_answers_identically() {
    let pts: Vec<Point<2>> =
        (0..40).map(|i| Point::new([(i % 8) as f64, (i / 8) as f64])).collect();
    let labels: Vec<u32> = (0..40).map(|i| (i as u32) % 3).collect();
    let tree = induce(&pts, &labels, 3, &DtreeConfig::search_tree());
    let json = serde_json::to_string(&tree).unwrap();
    let back: cip::dtree::DecisionTree<2> = serde_json::from_str(&json).unwrap();
    assert_eq!(back.num_nodes(), tree.num_nodes());
    let mut a = Vec::new();
    let mut b = Vec::new();
    for p in &pts {
        assert_eq!(tree.locate(p), back.locate(p));
        let q = Aabb::from_point(*p).inflate(1.0);
        tree.query_box(&q, &mut a);
        back.query_box(&q, &mut b);
        assert_eq!(a, b);
    }
}

#[test]
fn rcb_tree_roundtrip_locates_identically() {
    let pts: Vec<Point<2>> =
        (0..60).map(|i| Point::new([(i % 10) as f64, (i / 10) as f64])).collect();
    let weights = vec![1.0; pts.len()];
    let (tree, asg) = RcbTree::build(&pts, &weights, 6);
    let json = serde_json::to_string(&tree).unwrap();
    let back: RcbTree<2> = serde_json::from_str(&json).unwrap();
    for (i, p) in pts.iter().enumerate() {
        assert_eq!(back.locate(p), asg[i]);
    }
}

#[test]
fn snapshot_sequence_roundtrip() {
    let mut cfg = SimConfig::tiny();
    cfg.snapshots = 3;
    let sim = cip::sim::run(&cfg);
    let json = serde_json::to_string(&sim).unwrap();
    let back: cip::sim::SimResult = serde_json::from_str(&json).unwrap();
    assert_eq!(back.len(), sim.len());
    for (a, b) in sim.snapshots.iter().zip(back.snapshots.iter()) {
        assert_eq!(a.step, b.step);
        assert_eq!(a.alive, b.alive);
        assert_eq!(a.contact.num_faces(), b.contact.num_faces());
        assert_eq!(a.points.len(), b.points.len());
    }
    back.mesh_at(0).validate().unwrap();
}

#[test]
fn sim_config_roundtrip() {
    let cfg = SimConfig::medium();
    let json = serde_json::to_string(&cfg).unwrap();
    let back: SimConfig = serde_json::from_str(&json).unwrap();
    assert_eq!(back.plate_cells, cfg.plate_cells);
    assert_eq!(back.speed, cfg.speed);
    assert_eq!(back.impact_offset, cfg.impact_offset);
}
