//! Transport suite (DESIGN.md §6e): the binary wire format and the
//! pluggable transport backends.
//!
//! Four families of guarantees:
//!
//! * **wire round-trips** (proptest) — every [`Msg`] variant survives
//!   encode → decode bit-exactly, including non-finite float payloads;
//! * **corruption** — truncation, any single bit flip, a bad version
//!   byte, and hostile length fields are all rejected with a typed
//!   [`WireError`], never a panic;
//! * **backend identity** — the loopback-TCP backend produces output
//!   bit-identical to the in-process oracle, clean and under message
//!   chaos, and a transport that cannot come up surfaces as a typed
//!   [`RuntimeError::Transport`];
//! * **bounded mailboxes** — capacity-1 lanes do not deadlock under
//!   either schedule and change nothing about the output.
//!
//! CI sweeps seeds without recompiling via the `CHAOS_SEED` env var.

use cip::contact::DtreeFilter;
use cip::core::{dt_friendly_correct, DtFriendlyConfig, SnapshotView};
use cip::dtree::{induce, DecisionTree, DtreeConfig};
use cip::geom::{Aabb, Point};
use cip::partition::{partition_kway, PartitionerConfig};
use cip::runtime::{
    build_decomposition, execute_steps_transport, execute_steps_with, Decomposition, ExecOptions,
    FaultInjector, FaultPlan, Msg, RuntimeError, Schedule, StepInput,
};
use cip::sim::SimConfig;
use cip::trace::{run_traced, ChaosOptions, TraceOptions, TransportKind};
use cip_transport::frame::{decode_frame, encode_frame};
use cip_transport::tcp::Tcp;
use cip_transport::{WireError, HEADER_LEN, MAX_PAYLOAD, WIRE_VERSION};
use proptest::prelude::*;
use std::time::Duration;

/// CI seed sweep: `CHAOS_SEED` perturbs every seed in this file.
fn env_seed() -> u64 {
    std::env::var("CHAOS_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(0)
}

// ---------------------------------------------------------------------
// Wire format: round-trips and corruption
// ---------------------------------------------------------------------

/// SplitMix64 — deterministic field filler for arbitrary messages.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// An arbitrary message of the chosen variant. Floats come straight
/// from random bit patterns, so NaN and infinity payloads are covered.
fn arb_msg(variant: u8, seed: u64, n: usize) -> Msg {
    let mut s = seed;
    let pt = |s: &mut u64| {
        Point::from([f64::from_bits(mix(s)), f64::from_bits(mix(s)), f64::from_bits(mix(s))])
    };
    match variant {
        0 => Msg::Halo {
            from: mix(&mut s) as u32,
            step: mix(&mut s) as u32,
            seq: mix(&mut s),
            values: (0..n).map(|_| (mix(&mut s) as u32, pt(&mut s))).collect(),
        },
        1 => Msg::Element {
            from: mix(&mut s) as u32,
            step: mix(&mut s) as u32,
            seq: mix(&mut s),
            id: mix(&mut s) as u32,
            bbox: Aabb { min: pt(&mut s), max: pt(&mut s) },
            body: mix(&mut s) as u16,
        },
        2 => Msg::Done { from: mix(&mut s) as u32, step: mix(&mut s) as u32, sent: mix(&mut s) },
        3 => Msg::Resend {
            from: mix(&mut s) as u32,
            step: mix(&mut s) as u32,
            seqs: (0..n).map(|_| mix(&mut s)).collect(),
        },
        4 => Msg::Complete { from: mix(&mut s) as u32 },
        _ => Msg::Migrate {
            from: mix(&mut s) as u32,
            step: mix(&mut s) as u32,
            nodes: (0..n).map(|_| mix(&mut s) as u32).collect(),
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every `Msg` variant round-trips through its frame bit-exactly.
    /// Equality is checked on the re-encoded bytes, which is injective
    /// and — unlike `PartialEq` on floats — also covers NaN payloads.
    #[test]
    fn every_msg_variant_round_trips_bit_exactly(
        variant in 0u8..6,
        seed in 0u64..u64::MAX,
        to in 0u32..64,
        n in 0usize..12,
    ) {
        let msg = arb_msg(variant, seed ^ env_seed(), n);
        let mut buf = Vec::new();
        encode_frame(&msg, to, &mut buf);
        let (back, to2, consumed) = match decode_frame::<Msg>(&buf) {
            Ok(t) => t,
            Err(e) => panic!("own frame failed to decode: {e:?}"),
        };
        prop_assert_eq!(consumed, buf.len(), "frame must consume itself exactly");
        prop_assert_eq!(to2, to);
        let mut buf2 = Vec::new();
        encode_frame(&back, to, &mut buf2);
        prop_assert_eq!(&buf, &buf2, "decoded message re-encodes to different bytes");
    }

    /// Every strict prefix of a frame is rejected as truncated — the
    /// decoder never reads past the buffer and never panics.
    #[test]
    fn truncated_frames_are_rejected(
        variant in 0u8..6,
        seed in 0u64..u64::MAX,
        n in 0usize..8,
    ) {
        let msg = arb_msg(variant, seed ^ env_seed(), n);
        let mut buf = Vec::new();
        encode_frame(&msg, 3, &mut buf);
        for cut in 0..buf.len() {
            prop_assert!(
                decode_frame::<Msg>(&buf[..cut]).is_err(),
                "prefix of {cut}/{} bytes decoded", buf.len()
            );
        }
    }
}

#[test]
fn every_single_bit_flip_is_detected() {
    let msg = Msg::Halo {
        from: 1,
        step: 2,
        seq: 3,
        values: vec![(7, [1.0, -2.0, 3.5].into()), (9, [0.0, 4.0, -1.0].into())],
    };
    let mut buf = Vec::new();
    encode_frame(&msg, 2, &mut buf);
    for bit in 0..buf.len() * 8 {
        let mut c = buf.clone();
        c[bit / 8] ^= 1 << (bit % 8);
        assert!(
            decode_frame::<Msg>(&c).is_err(),
            "flipping bit {bit} of the frame went undetected"
        );
    }
}

/// Re-derives a frame's checksum after the header was tampered with, so
/// the targeted validation (not the CRC) is what rejects it.
fn re_crc(buf: &mut [u8]) {
    let crc = cip_transport::wire::crc32(&[&buf[..26], &buf[HEADER_LEN..]]);
    buf[26..30].copy_from_slice(&crc.to_le_bytes());
}

#[test]
fn unknown_wire_version_is_rejected_even_with_a_valid_checksum() {
    let mut buf = Vec::new();
    encode_frame(&Msg::Complete { from: 0 }, 1, &mut buf);
    buf[0] = WIRE_VERSION + 1;
    re_crc(&mut buf);
    match decode_frame::<Msg>(&buf) {
        Err(WireError::BadVersion { got }) => assert_eq!(got, WIRE_VERSION + 1),
        other => panic!("expected BadVersion, got {other:?}"),
    }
}

#[test]
fn hostile_payload_length_is_rejected_before_allocation() {
    let mut buf = Vec::new();
    encode_frame(&Msg::Complete { from: 0 }, 1, &mut buf);
    // Claim a payload just past the sanity ceiling; the declared bytes
    // are not even present, but the length check must fire first.
    buf[22..26].copy_from_slice(&((MAX_PAYLOAD as u32) + 1).to_le_bytes());
    re_crc(&mut buf);
    match decode_frame::<Msg>(&buf) {
        Err(WireError::Oversized { len }) => assert_eq!(len, MAX_PAYLOAD + 1),
        other => panic!("expected Oversized, got {other:?}"),
    }
}

#[test]
fn unknown_message_tag_is_rejected() {
    let mut buf = Vec::new();
    encode_frame(&Msg::Complete { from: 0 }, 1, &mut buf);
    buf[1] = 0xEE;
    re_crc(&mut buf);
    match decode_frame::<Msg>(&buf) {
        Err(WireError::BadTag { got }) => assert_eq!(got, 0xEE),
        other => panic!("expected BadTag, got {other:?}"),
    }
}

// ---------------------------------------------------------------------
// Executor-level fixtures (the chaos-suite staging, multi-step)
// ---------------------------------------------------------------------

/// Owned per-step staging; [`StepInput`]s borrow from it.
struct Staged {
    view: SnapshotView,
    elements: Vec<cip::contact::SurfaceElementInfo<3>>,
    bodies: Vec<u16>,
    decomposition: Decomposition,
    tree: DecisionTree<3>,
}

/// Stages `snapshots` of the tiny scenario for `k` ranks, with the
/// assignment fixed at snapshot 0 — the same prep as the traced driver.
fn stage(k: usize, snapshots: &[usize]) -> Vec<Staged> {
    let sim = cip::sim::run(&SimConfig::tiny());
    let view0 = SnapshotView::build(&sim, 0, 5);
    let mut asg = partition_kway(&view0.graph2.graph, k, &PartitionerConfig::default());
    let positions: Vec<_> =
        view0.graph2.node_of_vertex.iter().map(|&n| view0.mesh.points[n as usize]).collect();
    dt_friendly_correct(&view0.graph2.graph, &positions, k, &mut asg, &DtFriendlyConfig::default());
    let node_parts = view0.graph2.assignment_on_nodes(&asg);
    snapshots
        .iter()
        .map(|&s| {
            let view = SnapshotView::build(&sim, s, 5);
            let asg_now: Vec<u32> =
                view.graph2.node_of_vertex.iter().map(|&n| node_parts[n as usize]).collect();
            let elements = view.surface_elements(&node_parts);
            let bodies = view.face_bodies();
            let owners: Vec<u32> = elements.iter().map(|e| e.owner).collect();
            let decomposition = build_decomposition(
                &view.graph2.graph,
                &view.graph2.node_of_vertex,
                &asg_now,
                &owners,
                k,
            );
            let labels = view.contact.labels_from_node_parts(&node_parts);
            let tree = induce(&view.contact.positions, &labels, k, &DtreeConfig::search_tree());
            Staged { view, elements, bodies, decomposition, tree }
        })
        .collect()
}

/// Runs the staged steps through `run` and returns the outputs; the
/// closure receives the borrowed step inputs.
fn with_inputs<R>(
    staged: &[Staged],
    run: impl FnOnce(&[StepInput<'_, DtreeFilter<'_, 3>>]) -> R,
) -> R {
    let filters: Vec<DtreeFilter<'_, 3>> =
        staged.iter().map(|s| DtreeFilter::new(&s.tree, s.decomposition.k)).collect();
    let inputs: Vec<StepInput<'_, DtreeFilter<'_, 3>>> = staged
        .iter()
        .zip(filters.iter())
        .map(|(s, filter)| StepInput {
            decomposition: &s.decomposition,
            positions: &s.view.mesh.points,
            elements: &s.elements,
            bodies: &s.bodies,
            filter,
            tolerance: 0.4,
            recorder: cip::telemetry::Recorder::disabled(),
        })
        .collect();
    run(&inputs)
}

// ---------------------------------------------------------------------
// Backend identity and typed failures
// ---------------------------------------------------------------------

#[test]
fn loopback_tcp_matches_the_in_process_oracle_bit_for_bit() {
    let staged = stage(4, &[3, 4, 5]);
    let (oracle, tcp) = with_inputs(&staged, |inputs| {
        (
            execute_steps_with(inputs, &[], &ExecOptions::default()),
            execute_steps_transport(inputs, &[], &ExecOptions::default(), &Tcp::loopback()),
        )
    });
    assert_eq!(
        oracle.expect("in-process batch executes"),
        tcp.expect("loopback-TCP batch executes"),
        "the TCP backend must be bit-identical to the in-process oracle"
    );
}

#[test]
fn loopback_tcp_matches_the_oracle_under_message_chaos() {
    let staged = stage(3, &[4, 5]);
    let plan = FaultPlan {
        drop_permille: 150,
        dup_permille: 80,
        delay_permille: 80,
        reorder_permille: 80,
        ..FaultPlan::quiet(29 ^ env_seed())
    };
    let faults: Vec<FaultInjector> =
        (0..staged.len()).map(|_| FaultInjector::with_plan(plan.clone())).collect();
    let opts =
        ExecOptions { timeout: Duration::from_millis(300), retries: 2, ..ExecOptions::default() };
    let (oracle, tcp) = with_inputs(&staged, |inputs| {
        (
            execute_steps_with(inputs, &faults, &opts),
            execute_steps_transport(inputs, &faults, &opts, &Tcp::loopback()),
        )
    });
    assert_eq!(
        oracle.expect("chaotic in-process batch converges"),
        tcp.expect("chaotic loopback-TCP batch converges"),
        "fault injection is seeded above the transport, so outputs must agree"
    );
}

#[test]
fn unbindable_transport_surfaces_as_a_typed_runtime_error() {
    let staged = stage(2, &[3]);
    // 192.0.2.0/24 is TEST-NET-1: never assigned to a local interface,
    // so binding fails immediately without touching the network.
    let bad = Tcp { bind: "192.0.2.1:9".into() };
    let err = with_inputs(&staged, |inputs| {
        execute_steps_transport(inputs, &[], &ExecOptions::default(), &bad)
    })
    .expect_err("binding a TEST-NET address must fail");
    assert_eq!(err.failed_step, 0);
    assert!(err.completed.is_empty());
    match err.error {
        RuntimeError::Transport(_) => {}
        other => panic!("expected RuntimeError::Transport, got {other:?}"),
    }
}

// ---------------------------------------------------------------------
// Bounded mailboxes
// ---------------------------------------------------------------------

#[test]
fn capacity_one_mailboxes_complete_without_deadlock_on_both_schedules() {
    let staged = stage(4, &[3, 4, 5]);
    let baseline =
        with_inputs(&staged, |inputs| execute_steps_with(inputs, &[], &ExecOptions::default()))
            .expect("default-capacity batch executes");
    for schedule in [Schedule::Barrier, Schedule::pipelined()] {
        let opts = ExecOptions { mailbox_capacity: 1, schedule, ..ExecOptions::default() };
        let tight = with_inputs(&staged, |inputs| execute_steps_with(inputs, &[], &opts))
            .expect("capacity-1 batch executes");
        assert_eq!(
            tight, baseline,
            "a full lane must block the sender, not deadlock or change the output"
        );
    }
}

// ---------------------------------------------------------------------
// Traced runs over rank threads + loopback sockets
// ---------------------------------------------------------------------

fn tiny_trace(transport: TransportKind, chaos: Option<ChaosOptions>) -> TraceOptions {
    TraceOptions {
        scenario: "tiny".into(),
        k: 3,
        snapshots: Some(5),
        repartition_period: Some(2),
        chaos,
        transport,
        ..TraceOptions::default()
    }
}

#[test]
fn traced_tcp_threads_run_is_bit_identical_and_meters_bytes() {
    let clean = run_traced(&tiny_trace(TransportKind::InProcess, None)).expect("in-process run");
    let tcp =
        run_traced(&tiny_trace(TransportKind::TcpThreads { bind: "127.0.0.1:0".into() }, None))
            .expect("tcp-threads run");
    assert_eq!(tcp.halo, clean.halo);
    assert_eq!(tcp.shipments, clean.shipments);
    assert_eq!(tcp.contact_pairs, clean.contact_pairs);
    assert_eq!(tcp.migrated, clean.migrated);
    assert_eq!(tcp.repartitions, clean.repartitions);
    assert!(tcp.repartitions >= 1, "the scenario must exercise migration");
    tcp.verify_totals().expect("counters equal executed traffic");

    let sent = tcp.recorder.counter_value("transport.bytes_sent");
    let recv = tcp.recorder.counter_value("transport.bytes_recv");
    assert!(sent > 0, "a socket run must meter its bytes");
    assert_eq!(sent, recv, "every sent frame is received in a clean run");
    assert_eq!(clean.recorder.counter_value("transport.bytes_sent"), 0);
    assert!(
        tcp.summary().to_json().contains("transport.frame_bytes"),
        "the frame-size histogram must land in the summary"
    );
}

#[test]
fn traced_tcp_threads_chaos_matches_the_clean_in_process_run() {
    let clean = run_traced(&tiny_trace(TransportKind::InProcess, None)).expect("in-process run");
    let chaos = ChaosOptions {
        seed: 41 ^ env_seed(),
        drop_permille: 120,
        dup_permille: 60,
        delay_permille: 60,
        reorder_permille: 60,
        kill: None,
        timeout_ms: 300,
        retries: 2,
    };
    let noisy = run_traced(&tiny_trace(
        TransportKind::TcpThreads { bind: "127.0.0.1:0".into() },
        Some(chaos),
    ))
    .expect("chaotic tcp-threads run");
    assert_eq!(noisy.rank_losses, 0);
    assert_eq!(noisy.contact_pairs, clean.contact_pairs);
    assert_eq!(noisy.halo, clean.halo);
    assert_eq!(noisy.shipments, clean.shipments);
    noisy.verify_totals().expect("counters equal executed traffic");
}
