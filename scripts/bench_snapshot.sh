#!/usr/bin/env bash
# Benchmark snapshot: builds and runs the `bench_snapshot` harness, which
# times the hot partitioner paths (k-way refinement sequential/parallel,
# the multilevel drivers, 2-way FM, grid broad phase) and writes
# results/BENCH_partition.json, then the `runtime_snapshot` harness,
# which times barrier-vs-pipelined batch execution on a skewed load plus
# barrier-vs-overlapped repartitioning through the traced driver (the
# trace_repart/* rows carry stall_ms/hidden_ms, DESIGN.md §6f) and
# writes results/BENCH_runtime.json — both in the cip-results-v1
# envelope. CI uploads the files as artifacts so successive runs can be
# diffed.
#
# Usage: scripts/bench_snapshot.sh [--side N] [--reps R]
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release -p cip-bench --bin bench_snapshot --bin runtime_snapshot"
cargo build --release -p cip-bench --bin bench_snapshot --bin runtime_snapshot

echo "==> bench_snapshot $*"
./target/release/bench_snapshot "$@"

echo "==> runtime_snapshot"
./target/release/runtime_snapshot

echo "bench snapshot: OK (results/BENCH_partition.json, results/BENCH_runtime.json)"
