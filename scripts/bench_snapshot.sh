#!/usr/bin/env bash
# Benchmark snapshot: builds and runs the `bench_snapshot` harness, which
# times the hot partitioner paths (k-way refinement sequential/parallel,
# the multilevel drivers, 2-way FM, grid broad phase) and writes
# results/BENCH_partition.json in the cip-results-v1 envelope. CI uploads
# that file as an artifact so successive runs can be diffed.
#
# Usage: scripts/bench_snapshot.sh [--side N] [--reps R]
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release -p cip-bench --bin bench_snapshot"
cargo build --release -p cip-bench --bin bench_snapshot

echo "==> bench_snapshot $*"
./target/release/bench_snapshot "$@"

echo "bench snapshot: OK (results/BENCH_partition.json)"
