#!/usr/bin/env bash
# Tier-1 verification gate: build, tests, lints, formatting.
# Run from anywhere; operates on the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc --workspace --no-deps"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> no panics on the runtime step hot path"
# The executors must fail with typed RuntimeError values, never panic:
# scan the non-test portion (everything before #[cfg(test)]) of the
# barrier executor, the pipelined batch executor, the background
# repartition planner (a panicked planner must degrade to the
# synchronous path, DESIGN.md §6f), the whole transport crate (corrupt
# frames and dead sockets are typed errors, DESIGN.md §6e), and the
# worker-pool driver.
for hot_path in crates/runtime/src/exec.rs crates/runtime/src/pipeline.rs \
    crates/runtime/src/replan.rs crates/transport/src/*.rs src/worker.rs \
    crates/server/src/*.rs src/service.rs src/bin/cip-serve.rs; do
  if sed '/#\[cfg(test)\]/q' "$hot_path" \
      | grep -nE '\.unwrap\(\)|\.expect\(|panic!'; then
    echo "verify: FAIL — unwrap/expect/panic on the runtime step hot path ($hot_path)"
    exit 1
  fi
done

echo "==> no stringly-typed errors on public cip entry points"
# Fallible cip APIs carry typed errors (TraceError, ServerError, ...):
# Result<_, String> is banned from the facade crate and the job server.
if grep -rnE 'Result<[^>]*,[[:space:]]*String[[:space:]]*>' src crates/server/src; then
  echo "verify: FAIL — Result<_, String> on a public cip entry point"
  exit 1
fi

echo "verify: OK"
